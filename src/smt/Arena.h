//===- smt/Arena.h - Bump allocation for formula storage --------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chunked bump arena backing FormulaBuilder's node and child pools
/// (docs/ENCODER.md). Formula DAGs are append-only for the lifetime of a
/// window — nodes are hash-consed, never deleted — so per-node heap
/// traffic buys nothing: the arena hands out pointers by bumping a cursor
/// and frees every chunk at once when the builder dies at the window
/// barrier. Chunk bytes are charged to MemPool::FormulaDag, alongside the
/// per-node MemPool::Formula accounting the builder already does, so the
/// `mem.formula_dag_*` gauges expose the arena's real footprint including
/// blocks abandoned by ArenaVector growth.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SMT_ARENA_H
#define RVP_SMT_ARENA_H

#include "support/MemStats.h"
#include "support/Telemetry.h"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

namespace rvp {

/// Chunked bump allocator: allocate() bumps a cursor inside the current
/// chunk and starts a new geometrically-grown chunk when it runs out.
/// Individual allocations are never freed; reset() (and the destructor)
/// releases every chunk at once.
class BumpArena {
public:
  explicit BumpArena(size_t FirstChunkBytes = 1u << 16)
      : NextChunkBytes(FirstChunkBytes ? FirstChunkBytes : 1u << 16) {}
  ~BumpArena() { reset(); }
  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;

  void *allocate(size_t Bytes, size_t Align) {
    uintptr_t P = (Cur + (Align - 1)) & ~static_cast<uintptr_t>(Align - 1);
    if (P + Bytes > End) {
      newChunk(Bytes + Align);
      P = (Cur + (Align - 1)) & ~static_cast<uintptr_t>(Align - 1);
    }
    Cur = P + Bytes;
    return reinterpret_cast<void *>(P);
  }

  /// Bulk free: returns every chunk to the system (the window barrier).
  void reset() {
    for (const Chunk &C : Chunks)
      ::operator delete(C.Mem);
    Chunks.clear();
    Cur = End = 0;
    Mem.release();
  }

  /// Total bytes currently held in chunks (capacity, not live objects).
  uint64_t allocatedBytes() const {
    uint64_t Total = 0;
    for (const Chunk &C : Chunks)
      Total += C.Bytes;
    return Total;
  }

private:
  struct Chunk {
    void *Mem;
    size_t Bytes;
  };

  void newChunk(size_t MinBytes) {
    size_t Bytes = NextChunkBytes;
    while (Bytes < MinBytes)
      Bytes *= 2;
    NextChunkBytes = Bytes * 2;
    void *M = ::operator new(Bytes);
    Chunks.push_back({M, Bytes});
    Cur = reinterpret_cast<uintptr_t>(M);
    End = Cur + Bytes;
    if (Telemetry::enabled())
      Mem.charge(Bytes);
  }

  std::vector<Chunk> Chunks;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t NextChunkBytes;
  MemCharge Mem{MemPool::FormulaDag};
};

/// Growable array of trivially-copyable elements stored in a BumpArena.
/// Growth allocates a fresh block and memcpys; the old block stays in the
/// arena until the bulk free (bounded by the geometric growth factor).
template <typename T> class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector relocates elements with memcpy");

public:
  explicit ArenaVector(BumpArena &A) : A(A) {}

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  const T *data() const { return Data; }
  T *data() { return Data; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Count; }

  T &operator[](size_t I) { return Data[I]; }
  const T &operator[](size_t I) const { return Data[I]; }
  T &back() { return Data[Count - 1]; }

  void push_back(const T &Value) {
    if (Count == Capacity)
      grow(Capacity ? Capacity * 2 : 64);
    Data[Count++] = Value;
  }

  /// Appends [First, Last) at the end.
  void append(const T *First, const T *Last) {
    size_t N = static_cast<size_t>(Last - First);
    if (Count + N > Capacity) {
      size_t NewCap = Capacity ? Capacity * 2 : 64;
      while (NewCap < Count + N)
        NewCap *= 2;
      grow(NewCap);
    }
    std::memcpy(Data + Count, First, N * sizeof(T));
    Count += N;
  }

private:
  void grow(size_t NewCap) {
    T *NewData = static_cast<T *>(A.allocate(NewCap * sizeof(T), alignof(T)));
    if (Count)
      std::memcpy(NewData, Data, Count * sizeof(T));
    Data = NewData;
    Capacity = NewCap;
  }

  BumpArena &A;
  T *Data = nullptr;
  size_t Count = 0;
  size_t Capacity = 0;
};

} // namespace rvp

#endif // RVP_SMT_ARENA_H
