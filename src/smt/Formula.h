//===- smt/Formula.h - Difference-logic formulas ----------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Negation-free formulas over strict difference atoms `O_a < O_b`, the
/// fragment the paper's encoding lives in (Section 3.2 and the `Oa := Ob`
/// substitution of Section 4 keep everything in ordering comparisons over
/// integer order variables).
///
/// Because all order variables denote *distinct* positions in a reordered
/// trace, the negation of `a < b` is exactly `b < a`; formulas therefore
/// never need Not nodes, and every subformula occurs positively, which the
/// Tseitin transform exploits (Plaisted–Greenbaum, positive polarity only).
///
/// Nodes are hash-consed in an arena owned by FormulaBuilder; NodeRef is a
/// plain index, cheap to copy and store in memo tables.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SMT_FORMULA_H
#define RVP_SMT_FORMULA_H

#include "smt/Arena.h"
#include "support/MemStats.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace rvp {

/// An integer order variable; the detectors use event ids directly.
using OrderVar = uint32_t;

/// Index of a formula node inside its FormulaBuilder arena.
using NodeRef = uint32_t;

enum class FormulaKind : uint8_t {
  True,
  False,
  Atom,    ///< strict inequality VarA < VarB
  BoolVar, ///< named boolean variable VarA; VarB != 0 means negated
  And,
  Or,
};

/// One hash-consed formula node. Children of And/Or live in the builder's
/// child pool, in [ChildBegin, ChildEnd).
struct FormulaNode {
  FormulaKind Kind;
  OrderVar VarA = 0;
  OrderVar VarB = 0;
  uint32_t ChildBegin = 0;
  uint32_t ChildEnd = 0;

  uint32_t numChildren() const { return ChildEnd - ChildBegin; }
};

/// Arena + hash-consing constructor for formulas. All simplifications are
/// local and cheap: constant folding, flattening of nested And/Or,
/// duplicate-child removal, and complement detection (`a<b` and `b<a` in
/// the same And folds to False; in the same Or to True).
class FormulaBuilder {
public:
  FormulaBuilder();

  NodeRef mkTrue() const { return TrueRef; }
  NodeRef mkFalse() const { return FalseRef; }

  /// The atom `A < B`. Asserts A != B (an event never precedes itself).
  NodeRef mkAtom(OrderVar A, OrderVar B);

  /// A named boolean variable (used for the cf(e) feasibility definitions
  /// of Section 3.2, whose dependency graph may be cyclic and therefore
  /// cannot be inlined as a tree).
  NodeRef mkBoolVar(uint32_t Id);
  /// The negation of a boolean variable; only used to write one-directional
  /// definitions `var -> def` as `(!var | def)`. All definitions occur
  /// positively, so this is the only negation the language needs.
  NodeRef mkNotBoolVar(uint32_t Id);
  /// `(!var | Def)`, i.e. the definition clause for a boolean variable.
  NodeRef mkGuardedDef(uint32_t Id, NodeRef Def) {
    return mkOr2(mkNotBoolVar(Id), Def);
  }

  NodeRef mkAnd(std::vector<NodeRef> Children);
  NodeRef mkOr(std::vector<NodeRef> Children);

  /// Binary conveniences.
  NodeRef mkAnd2(NodeRef A, NodeRef B) { return mkAnd({A, B}); }
  NodeRef mkOr2(NodeRef A, NodeRef B) { return mkOr({A, B}); }

  const FormulaNode &node(NodeRef Ref) const { return Nodes[Ref]; }
  const NodeRef *childBegin(NodeRef Ref) const {
    return Children.data() + Nodes[Ref].ChildBegin;
  }
  const NodeRef *childEnd(NodeRef Ref) const {
    return Children.data() + Nodes[Ref].ChildEnd;
  }

  size_t numNodes() const { return Nodes.size(); }

  /// Collects the set of order variables appearing under \p Root.
  std::vector<OrderVar> collectVars(NodeRef Root) const;

  /// Renders a formula for debugging and for the Figure 5 pretty-printer.
  /// \p VarName maps an order variable to a display name; pass nullptr for
  /// the default "O<n>".
  std::string toString(NodeRef Root,
                       std::string (*VarName)(OrderVar) = nullptr) const;

private:
  NodeRef mkNary(FormulaKind Kind, std::vector<NodeRef> Children);
  NodeRef intern(FormulaNode Node, const std::vector<NodeRef> &Kids);
  void growTable();

  /// One hash-consing table slot: full hash plus node index. Ref ==
  /// EmptySlot marks an unused slot.
  struct TableSlot {
    uint64_t Hash;
    NodeRef Ref;
  };
  static constexpr NodeRef EmptySlot = UINT32_MAX;

  /// Bump storage for the node and child pools: interning is append-only,
  /// so the arena replaces per-push heap reallocation with cursor bumps
  /// and frees everything at once when the builder dies at the window
  /// barrier (smt/Arena.h).
  BumpArena Arena;
  ArenaVector<FormulaNode> Nodes{Arena};
  ArenaVector<NodeRef> Children{Arena};
  /// Open-addressed linear-probe hash-consing index (insert-only,
  /// power-of-two capacity, resized at ~70% load). Replaces the
  /// unordered_map-of-vectors bucket scheme: one flat probe sequence per
  /// intern instead of a heap-allocated vector per distinct hash.
  std::vector<TableSlot> Table;
  size_t TableCount = 0;
  /// mem.formula_* accounting of the node and child arenas; charged per
  /// interned node when telemetry is on (support/MemStats.h).
  MemCharge Mem{MemPool::Formula};
  /// Complement-detection scratch for mkNary, epoch-stamped instead of
  /// cleared: unordered containers never shrink their bucket array, so a
  /// single huge conjunction (a window root) would make every later
  /// clear() — even for two-element disjunctions — pay O(buckets). That
  /// cost is invisible with a throwaway per-COP builder but quadratic for
  /// the long-lived shared builder of the incremental sessions.
  std::unordered_map<uint64_t, uint64_t> AtomPairScratch;
  uint64_t AtomPairEpoch = 0;
  NodeRef TrueRef = 0;
  NodeRef FalseRef = 0;
};

} // namespace rvp

#endif // RVP_SMT_FORMULA_H
