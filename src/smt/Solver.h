//===- smt/Solver.h - Solver interface for race queries ---------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver abstraction the detectors program against. Two backends:
///
///  * createIdlSolver() — the in-tree CDCL(T) solver (Sat.h + DiffLogic.h),
///    always available; the default.
///  * createZ3Solver()  — Z3 via its C++ API, mirroring the paper's use of
///    Z3/Yices with Integer Difference Logic; available when the build
///    found Z3 (returns nullptr otherwise). Used for cross-validation.
///
/// A successful solve returns a model assigning each order variable an
/// integer position; sorting events by position yields the reordered trace
/// that witnesses the race (Theorem 3's construction).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SMT_SOLVER_H
#define RVP_SMT_SOLVER_H

#include "smt/Formula.h"
#include "smt/Sat.h"
#include "support/Timer.h"

#include <memory>
#include <unordered_map>

namespace rvp {

/// Maps order variables to integer positions; only variables occurring in
/// the solved formula are present.
using OrderModel = std::unordered_map<OrderVar, int64_t>;

class SmtSolver {
public:
  virtual ~SmtSolver();

  /// Decides satisfiability of \p Root (built in \p FB). On Sat, fills
  /// \p ModelOut (if non-null). Returns Unknown when \p Limit expires
  /// first — the per-COP budget of Section 4.
  virtual SatResult solve(const FormulaBuilder &FB, NodeRef Root,
                          Deadline Limit, OrderModel *ModelOut) = 0;

  virtual const char *name() const = 0;
};

/// The in-tree CDCL + order-theory solver.
std::unique_ptr<SmtSolver> createIdlSolver();

/// The Z3 backend; nullptr when the build has no Z3.
std::unique_ptr<SmtSolver> createZ3Solver();

/// Names a backend: "idl" or "z3". Returns nullptr for unknown/unavailable.
std::unique_ptr<SmtSolver> createSolverByName(const std::string &Name);

/// An incremental solving session: one persistent solver whose clause
/// database, learned clauses, variable activities, and theory state
/// survive across queries (MiniSat-style assumption solving; the Z3
/// backend mirrors it with check_sat_assuming). The detectors open one
/// session per window (per worker) and decide every surviving COP through
/// it; see docs/INCREMENTAL_SOLVING.md.
///
/// Every call must pass the SAME FormulaBuilder: the session caches the
/// encoding by node reference, so the builder's hash-consing is what makes
/// subformulas shared across queries encode only once.
class SmtSession {
public:
  virtual ~SmtSession();

  /// Permanently asserts \p Root; it constrains every later query. Only
  /// sound for constraints implied by each query's own formula (the
  /// detectors pass nothing here in substitution mode — the shared window
  /// core is reused through the encoding cache and learned clauses).
  virtual void assertFormula(const FormulaBuilder &FB, NodeRef Root) = 0;

  /// Decides \p Root under a fresh selector literal s (adds s -> Root,
  /// solves under assumption s, retires s afterwards), so every clause
  /// learned while answering is implied by the session's definitional
  /// clauses alone and transfers to later queries. \p Limit is this
  /// query's own budget — callers construct a fresh Deadline per COP
  /// (Section 4). On Sat, \p ModelOut (if non-null) receives order
  /// positions; note they depend on session history, unlike the one-shot
  /// solver's (the detectors re-derive witness models one-shot for
  /// byte-identical reports).
  virtual SatResult query(const FormulaBuilder &FB, NodeRef Root,
                          Deadline Limit, OrderModel *ModelOut) = 0;

  /// True once the session detected internal corruption — a failed
  /// clause-database allocation, a backend exception, or an injected
  /// `session.corrupt` fault. A poisoned session only ever answers
  /// Unknown; callers should quarantine it and rebuild or fall back to
  /// one-shot solving (src/detect/Resilience.h implements that policy).
  virtual bool poisoned() const = 0;

  virtual const char *name() const = 0;
};

/// An incremental session on the in-tree CDCL(T) solver.
std::unique_ptr<SmtSession> createIdlSession();

/// An incremental session on Z3; nullptr when the build has no Z3.
std::unique_ptr<SmtSession> createZ3Session();

/// Names a backend: "idl" or "z3". Returns nullptr for unknown/unavailable.
std::unique_ptr<SmtSession> createSessionByName(const std::string &Name);

/// True when the build carries the Z3 backend (compile-time fact; the
/// `z3.unavailable` fault site can still make the factories fail at
/// runtime to exercise the z3 -> idl fallback).
bool z3Available();

} // namespace rvp

#endif // RVP_SMT_SOLVER_H
