//===- smt/Tseitin.h - Shared CNF encoding for order formulas ---*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Tseitin encoding shared by the one-shot IdlSolver and the
/// incremental IdlSession: positive-polarity CNF (the formula language has
/// no negation except guarded definitions), one boolean variable per
/// unordered order-variable pair bound to the difference-logic theory, one
/// gate variable per And/Or node.
///
/// The encoder is a cache: LitOf is indexed by NodeRef of ONE
/// FormulaBuilder, and AtomVars/BoolVars persist across encode() calls.
/// Because the builder hash-conses, a subformula shared by many queries is
/// encoded — and its definitional clauses added — exactly once; this is
/// what makes the per-window solver session incremental (see
/// docs/INCREMENTAL_SOLVING.md). Definitional clauses are sound to keep
/// forever: each one only constrains the fresh gate variable it defines.
///
/// Internal to rvp_smt; not part of the public solver interface.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SMT_TSEITIN_H
#define RVP_SMT_TSEITIN_H

#include "smt/DiffLogic.h"
#include "smt/Formula.h"
#include "smt/Sat.h"
#include "smt/Solver.h"
#include "support/Compiler.h"

#include <map>
#include <utility>
#include <vector>

namespace rvp {

class TseitinEncoder {
public:
  TseitinEncoder(SatSolver &Sat, DiffLogicTheory &Theory)
      : Sat(Sat), Theory(Theory) {}

  /// Encodes \p Root (built in \p FB) into the solver, reusing every node
  /// already encoded by an earlier call on the same builder, and returns
  /// the literal equivalent to the formula. \p Root must not be a
  /// constant (callers special-case True/False).
  Lit encode(const FormulaBuilder &FB, NodeRef Root) {
    if (LitOf.size() < FB.numNodes())
      LitOf.resize(FB.numNodes(), Lit());

    // Post-order iterative encoding; children first.
    std::vector<std::pair<NodeRef, bool>> Work = {{Root, false}};
    while (!Work.empty()) {
      auto [Ref, ChildrenDone] = Work.back();
      Work.pop_back();
      if (LitOf[Ref].valid())
        continue;
      const FormulaNode &N = FB.node(Ref);
      switch (N.Kind) {
      case FormulaKind::True:
      case FormulaKind::False:
        // mkAnd/mkOr fold constants away; only the root can be constant,
        // and callers handle that case before encoding.
        RVP_UNREACHABLE("constant below the root of a simplified formula");
      case FormulaKind::Atom: {
        // One boolean variable per unordered pair; the positive literal
        // asserts min<max, the negative one max<min (all order variables
        // denote distinct positions).
        OrderVar Lo = std::min(N.VarA, N.VarB);
        OrderVar Hi = std::max(N.VarA, N.VarB);
        auto [It, Inserted] = AtomVars.try_emplace({Lo, Hi}, 0);
        if (Inserted) {
          Var V = Sat.newVar();
          It->second = V;
          Theory.bindLit(Lit::pos(V), Lo, Hi);
          Theory.bindLit(Lit::neg(V), Hi, Lo);
        }
        LitOf[Ref] =
            N.VarA == Lo ? Lit::pos(It->second) : Lit::neg(It->second);
        break;
      }
      case FormulaKind::BoolVar: {
        auto [It, Inserted] = BoolVars.try_emplace(N.VarA, 0);
        if (Inserted)
          It->second = Sat.newVar();
        LitOf[Ref] = N.VarB ? Lit::neg(It->second) : Lit::pos(It->second);
        break;
      }
      case FormulaKind::And:
      case FormulaKind::Or: {
        if (!ChildrenDone) {
          Work.push_back({Ref, true});
          for (const NodeRef *C = FB.childBegin(Ref), *E = FB.childEnd(Ref);
               C != E; ++C)
            if (!LitOf[*C].valid())
              Work.push_back({*C, false});
          continue;
        }
        Var Gate = Sat.newVar();
        Lit G = Lit::pos(Gate);
        if (N.Kind == FormulaKind::And) {
          for (const NodeRef *C = FB.childBegin(Ref), *E = FB.childEnd(Ref);
               C != E; ++C)
            Sat.addClause({~G, LitOf[*C]});
        } else {
          std::vector<Lit> Clause = {~G};
          for (const NodeRef *C = FB.childBegin(Ref), *E = FB.childEnd(Ref);
               C != E; ++C)
            Clause.push_back(LitOf[*C]);
          Sat.addClause(std::move(Clause));
        }
        LitOf[Ref] = G;
        break;
      }
      }
    }
    return LitOf[Root];
  }

  /// Reads the order positions of every variable any encoded atom
  /// mentions, off the theory's current topological order. Only meaningful
  /// right after Sat answered Sat, before any backtracking.
  void readModel(OrderModel &Out) const {
    Out.clear();
    for (const auto &[Pair, V] : AtomVars) {
      (void)V;
      auto Record = [&](OrderVar Variable) {
        uint32_t Pos = Theory.graph().positionOf(Variable);
        if (Pos != UINT32_MAX)
          Out[Variable] = Pos;
      };
      Record(Pair.first);
      Record(Pair.second);
    }
  }

private:
  SatSolver &Sat;
  DiffLogicTheory &Theory;
  std::vector<Lit> LitOf; ///< per NodeRef of the (single) builder
  std::map<std::pair<OrderVar, OrderVar>, Var> AtomVars;
  std::map<uint32_t, Var> BoolVars;
};

} // namespace rvp

#endif // RVP_SMT_TSEITIN_H
