//===- smt/Incremental.cpp - Incremental CDCL(T) session ------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The assumption-based incremental solving path (docs/INCREMENTAL_SOLVING
/// .md): one SatSolver + DiffLogicTheory pair lives for the whole session.
/// Each query guards its root with a fresh selector variable s,
///
///   (~s \/ root)   +   solve under assumption {s}   +   unit ~s after,
///
/// so the clause database only ever contains definitional clauses, guarded
/// roots, and lemmas derived from them — all globally valid — and every
/// learned clause transfers to the next query. The theory backtracks
/// across queries through the ordinary undoLit stream: edges asserted at
/// decision levels are popped when solve() unwinds, while level-0 facts
/// persist.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "smt/Tseitin.h"

#include "support/FaultInjector.h"
#include "support/Telemetry.h"

using namespace rvp;

SmtSession::~SmtSession() = default;

namespace {

class IdlSession : public SmtSession {
public:
  IdlSession() : Sat(&Theory), Encoder(Sat, Theory) {}

  void assertFormula(const FormulaBuilder &FB, NodeRef Root) override {
    const FormulaNode &N = FB.node(Root);
    if (N.Kind == FormulaKind::True)
      return;
    if (N.Kind == FormulaKind::False) {
      CoreUnsat = true;
      return;
    }
    Sat.backtrackToRoot();
    Lit L = Encoder.encode(FB, Root);
    if (!Sat.addClause({L}))
      CoreUnsat = true;
  }

  SatResult query(const FormulaBuilder &FB, NodeRef Root, Deadline Limit,
                  OrderModel *ModelOut) override {
    Timer Clock;
    DidSolve = false;
    SatResult Result = queryImpl(FB, Root, Limit, ModelOut);
    if (Telemetry::enabled())
      recordQueryTelemetry(Clock.seconds());
    return Result;
  }

  bool poisoned() const override { return Poisoned; }

  const char *name() const override { return "idl"; }

private:
  SatResult queryImpl(const FormulaBuilder &FB, NodeRef Root,
                      Deadline Limit, OrderModel *ModelOut) {
    if (FaultInjector::shouldFail(faults::SessionCorrupt))
      Poisoned = true;
    if (Poisoned)
      return SatResult::Unknown;
    if (CoreUnsat)
      return SatResult::Unsat;
    const FormulaNode &N = FB.node(Root);
    if (N.Kind == FormulaKind::True) {
      if (ModelOut)
        ModelOut->clear();
      return SatResult::Sat;
    }
    if (N.Kind == FormulaKind::False)
      return SatResult::Unsat;
    if (FaultInjector::shouldFail(faults::SolverTimeout))
      return SatResult::Unknown; // injected budget expiry

    Sat.backtrackToRoot();
    Lit RootLit = Encoder.encode(FB, Root);
    Var Selector = Sat.newVar();
    if (!Sat.addClause({Lit::neg(Selector), RootLit})) {
      CoreUnsat = true;
      return SatResult::Unsat;
    }

    DidSolve = true;
    SatResult Result = Sat.solve({Lit::pos(Selector)}, Limit);
    // The model lives in the theory's current trail; read it before the
    // backtrack below unwinds those edges.
    if (Result == SatResult::Sat && ModelOut)
      Encoder.readModel(*ModelOut);

    // Retire the selector: the permanent unit ~s satisfies the guarded
    // root and every learned clause mentioning the selector, so later
    // queries never revisit this one's pin.
    Sat.backtrackToRoot();
    if (!Sat.addClause({Lit::neg(Selector)}))
      CoreUnsat = true;
    // A failed clause-database allocation leaves the database truncated;
    // nothing this session answers from here on can be trusted.
    if (Sat.allocFailed())
      Poisoned = true;
    return Result;
  }

  void recordQueryTelemetry(double Seconds) {
    MetricsRegistry &Reg = MetricsRegistry::global();
    Reg.counter("solver.incremental_calls").inc();
    if (DidSolve) {
      // The SatSolver resets its search counters per solve() call, so
      // these are this query's numbers; skip them when the query was
      // decided without searching (constant root, poisoned core).
      Reg.counter("sat.decisions").add(Sat.numDecisions());
      Reg.counter("sat.propagations").add(Sat.numPropagations());
      Reg.counter("sat.conflicts").add(Sat.numConflicts());
      Reg.counter("sat.restarts").add(Sat.numRestarts());
      Reg.counter("sat.assumption_conflicts")
          .add(Sat.numAssumptionConflicts());
      Reg.gauge("sat.clauses_kept").set(Sat.numLearnedClauses());
    }
    Reg.histogram("solver.incremental.latency_seconds").record(Seconds);
  }

  DiffLogicTheory Theory;
  SatSolver Sat;
  TseitinEncoder Encoder;
  bool CoreUnsat = false;
  bool DidSolve = false;
  bool Poisoned = false;
};

} // namespace

std::unique_ptr<SmtSession> rvp::createIdlSession() {
  return std::make_unique<IdlSession>();
}

std::unique_ptr<SmtSession> rvp::createSessionByName(const std::string &Name) {
  if (Name == "idl" || Name.empty())
    return createIdlSession();
  if (Name == "z3") {
    if (FaultInjector::shouldFail(faults::Z3Unavailable))
      return nullptr; // injected backend outage; callers fall back to idl
    return createZ3Session();
  }
  return nullptr;
}
