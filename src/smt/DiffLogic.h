//===- smt/DiffLogic.h - Strict-order difference theory ---------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The theory solver behind the paper's constraint encoding. After the
/// `Oa := Ob` substitution (Section 4) every theory atom is a strict
/// ordering `O_u < O_v` over integer order variables, so a conjunction of
/// asserted atoms is satisfiable iff the corresponding digraph is acyclic.
/// We therefore maintain an *online topological order* (Pearce–Kelly):
/// edge insertion restores the order by reshuffling only the affected
/// region, cycle detection yields the explanation clause, and deletion
/// under backtracking is free (a topological order of a graph remains
/// valid for any subgraph).
///
/// The final topological order is also the model: it gives the reordered
/// trace (the race witness) directly.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SMT_DIFFLOGIC_H
#define RVP_SMT_DIFFLOGIC_H

#include "smt/Formula.h"
#include "smt/Sat.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace rvp {

/// Incremental strict-partial-order maintenance with explanations.
class OrderGraph {
public:
  /// Ensures node \p V exists and returns its dense index.
  uint32_t ensureNode(uint32_t V);

  /// Adds edge \p From < \p To justified by \p Reason. Returns true on
  /// success. On a cycle, returns false and fills \p CycleReasons with the
  /// justifications of every edge on the cycle (including \p Reason);
  /// the graph is left unchanged.
  bool addEdge(uint32_t From, uint32_t To, Lit Reason,
               std::vector<Lit> &CycleReasons);

  /// Removes the most recently added edge (stack discipline).
  void popEdge();

  uint32_t numEdges() const { return static_cast<uint32_t>(EdgeStack.size()); }

  /// Topological position of node \p V; nodes may share positions only if
  /// unordered. Valid for building witness orders after solving.
  uint32_t positionOf(uint32_t V) const;

  /// True if \p From precedes \p To in the current asserted order
  /// (conservative: checks reachability).
  bool reaches(uint32_t From, uint32_t To) const;

private:
  struct HalfEdge {
    uint32_t Node; ///< target (out-list) or source (in-list)
    Lit Reason;
  };

  bool dfsForward(uint32_t Start, uint32_t Goal, uint32_t UpperBound,
                  std::vector<uint32_t> &Found);
  void dfsBackward(uint32_t Start, uint32_t LowerBound,
                   std::vector<uint32_t> &Found);
  void reorder(const std::vector<uint32_t> &Forward,
               const std::vector<uint32_t> &Backward);

  std::unordered_map<uint32_t, uint32_t> NodeIndex;
  std::vector<std::vector<HalfEdge>> Out, In;
  std::vector<uint32_t> Ord;       ///< node -> topological key
  std::vector<uint32_t> ParentOf;  ///< DFS scratch: parent node
  std::vector<Lit> ParentEdge;     ///< DFS scratch: edge justification
  std::vector<uint8_t> Visited;    ///< DFS scratch
  std::vector<uint32_t> Touched;   ///< DFS scratch cleanup list
  struct EdgeRecord {
    uint32_t From, To;
  };
  std::vector<EdgeRecord> EdgeStack;
};

/// Adapts OrderGraph to the SatSolver Theory interface. The Tseitin layer
/// registers which boolean literals denote which ordering edges.
class DiffLogicTheory : public Theory {
public:
  /// Declares that asserting \p L means "order variable From < To".
  /// The complement literal ~L is implicitly the reversed edge only if
  /// registered separately (the Tseitin layer registers both directions).
  void bindLit(Lit L, OrderVar From, OrderVar To);

  bool assertLit(Lit L, std::vector<Lit> &Conflict) override;
  void undoLit(Lit L) override;

  OrderGraph &graph() { return Graph; }
  const OrderGraph &graph() const { return Graph; }

private:
  struct Edge {
    OrderVar From, To;
  };
  std::unordered_map<uint32_t, Edge> EdgeOfLit; // key: Lit.X
  OrderGraph Graph;
};

} // namespace rvp

#endif // RVP_SMT_DIFFLOGIC_H
