//===- smt/Sat.cpp - CDCL SAT solver with theory hook ----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Sat.h"

#include "support/Compiler.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace rvp;

Theory::~Theory() = default;

Var SatSolver::newVar() {
  Var V = static_cast<Var>(Assigns.size());
  Assigns.push_back(ValueUnassigned);
  Phase.push_back(0);
  Levels.push_back(0);
  Reasons.push_back(NoReason);
  Activity.push_back(0.0);
  HeapPos.push_back(UINT32_MAX);
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  if (Unsatisfiable)
    return false;
  if (FaultInjector::shouldFail(faults::SatDbAlloc)) {
    // Simulated allocation failure: the clause is dropped, so the database
    // no longer represents the input formula. Mark the solver sick; solve()
    // degrades to Unknown rather than answering from the truncated DB.
    AllocFailed = true;
    return true;
  }
  assert(TrailLimits.empty() && "clauses must be added at decision level 0");

  // Normalize: sort, dedupe, detect tautologies, drop level-0 falsified
  // literals and satisfied clauses.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.X < B.X; });
  std::vector<Lit> Cleaned;
  for (size_t I = 0; I < Lits.size(); ++I) {
    Lit L = Lits[I];
    if (I + 1 < Lits.size() && Lits[I + 1] == ~L)
      return true; // tautology
    if (I > 0 && Lits[I - 1] == L)
      continue;
    uint8_t V = litValue(L);
    if (V == 1)
      return true; // satisfied at level 0
    if (V == 0)
      continue; // falsified at level 0
    Cleaned.push_back(L);
  }

  if (Cleaned.empty()) {
    Unsatisfiable = true;
    return false;
  }
  if (Cleaned.size() == 1) {
    if (!enqueue(Cleaned[0], NoReason)) {
      Unsatisfiable = true;
      return false;
    }
    return true;
  }
  attachClause(std::move(Cleaned), /*Learned=*/false);
  return true;
}

SatSolver::ClauseRef SatSolver::attachClause(std::vector<Lit> Lits,
                                             bool Learned) {
  assert(Lits.size() >= 2 && "watched clauses need two literals");
  ClauseRef Ref = static_cast<ClauseRef>(Clauses.size());
  Clause C;
  C.Lits = std::move(Lits);
  C.Learned = Learned;
  C.Activity = Learned ? ClauseInc : 0;
  Watches[(~C.Lits[0]).X].push_back({Ref, C.Lits[1]});
  Watches[(~C.Lits[1]).X].push_back({Ref, C.Lits[0]});
  if (Telemetry::enabled())
    Mem.charge(sizeof(Clause) + C.Lits.size() * sizeof(Lit));
  Clauses.push_back(std::move(C));
  return Ref;
}

bool SatSolver::enqueue(Lit L, ClauseRef Reason) {
  uint8_t V = litValue(L);
  if (V != ValueUnassigned)
    return V == 1;
  Var X = L.var();
  Assigns[X] = L.sign() ? 0 : 1;
  Phase[X] = Assigns[X];
  Levels[X] = currentLevel();
  Reasons[X] = Reason;
  Trail.push_back(L);
  return true;
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++];
    ++Propagations;
    std::vector<Watcher> &Watchers = Watches[P.X];
    size_t Kept = 0;
    for (size_t I = 0; I < Watchers.size(); ++I) {
      Watcher W = Watchers[I];
      // Blocker optimization: clause already satisfied.
      if (litValue(W.Blocker) == 1) {
        Watchers[Kept++] = W;
        continue;
      }
      Clause &C = Clauses[W.Ref];
      Lit NotP = ~P;
      // Normalize so the falsified watcher is Lits[1].
      if (C.Lits[0] == NotP)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == NotP && "watch list out of sync");
      if (litValue(C.Lits[0]) == 1) {
        Watchers[Kept++] = {W.Ref, C.Lits[0]};
        continue;
      }
      // Look for a replacement watch.
      bool FoundWatch = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (litValue(C.Lits[K]) != 0) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[(~C.Lits[1]).X].push_back({W.Ref, C.Lits[0]});
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Clause is unit or conflicting.
      Watchers[Kept++] = W;
      if (litValue(C.Lits[0]) == 0) {
        // Conflict: keep the remaining watchers and bail out.
        for (size_t K = I + 1; K < Watchers.size(); ++K)
          Watchers[Kept++] = Watchers[K];
        Watchers.resize(Kept);
        PropagateHead = static_cast<uint32_t>(Trail.size());
        return W.Ref;
      }
      enqueue(C.Lits[0], W.Ref);
    }
    Watchers.resize(Kept);
  }
  return NoReason;
}

void SatSolver::bumpVar(Var V) {
  Activity[V] += VarInc;
  if (Activity[V] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    VarInc *= 1e-100;
  }
  if (HeapPos[V] != UINT32_MAX)
    heapUp(HeapPos[V]);
}

void SatSolver::bumpClause(Clause &C) {
  C.Activity += ClauseInc;
  if (C.Activity > 1e20) {
    for (Clause &Other : Clauses)
      if (Other.Learned)
        Other.Activity *= 1e-20;
    ClauseInc *= 1e-20;
  }
}

void SatSolver::decayActivities() {
  VarInc /= 0.95;
  ClauseInc /= 0.999;
}

void SatSolver::analyze(ClauseRef ConflictRef,
                        const std::vector<Lit> &TheoryConflict,
                        std::vector<Lit> &Learned,
                        uint32_t &BacktrackLevel) {
  Learned.clear();
  Learned.push_back(Lit()); // placeholder for the asserting literal

  uint32_t Counter = 0;
  Lit P;
  size_t TrailIndex = Trail.size();
  const std::vector<Lit> *Reason =
      ConflictRef == TheoryLocked ? &TheoryConflict
                                  : &Clauses[ConflictRef].Lits;
  if (ConflictRef != TheoryLocked)
    bumpClause(Clauses[ConflictRef]);

  for (;;) {
    for (Lit Q : *Reason) {
      if (P.valid() && Q == P)
        continue;
      Var V = Q.var();
      if (Seen[V] || level(V) == 0)
        continue;
      Seen[V] = 1;
      bumpVar(V);
      if (level(V) >= currentLevel())
        ++Counter;
      else
        Learned.push_back(Q);
    }
    // Find the next marked literal on the trail.
    while (!Seen[Trail[--TrailIndex].var()])
      ;
    P = Trail[TrailIndex];
    Seen[P.var()] = 0;
    if (--Counter == 0)
      break;
    ClauseRef R = Reasons[P.var()];
    assert(R != NoReason && "UIP literal must have a reason");
    bumpClause(Clauses[R]);
    Reason = &Clauses[R].Lits;
  }
  Learned[0] = ~P;

  // Clear marks of the literals kept in the learned clause.
  BacktrackLevel = 0;
  for (size_t I = 1; I < Learned.size(); ++I)
    Seen[Learned[I].var()] = 0;

  // Compute the backtrack level (second-highest level in the clause) and
  // move that literal to position 1 for watching.
  if (Learned.size() > 1) {
    size_t MaxIndex = 1;
    for (size_t I = 2; I < Learned.size(); ++I)
      if (level(Learned[I].var()) > level(Learned[MaxIndex].var()))
        MaxIndex = I;
    std::swap(Learned[1], Learned[MaxIndex]);
    BacktrackLevel = level(Learned[1].var());
  }
}

void SatSolver::analyzeFinal(Lit FailedAssumption) {
  // Walks the implication graph backwards from ~FailedAssumption (true on
  // the trail) down to the pseudo-decisions that imply it. Decisions above
  // level 0 are exactly the planted assumptions, so the collected set is
  // an inconsistent subset of Assumptions.
  FinalConflict.clear();
  FinalConflict.push_back(FailedAssumption);
  if (currentLevel() == 0)
    return;
  if (level(FailedAssumption.var()) > 0)
    Seen[FailedAssumption.var()] = 1;
  for (size_t I = Trail.size(); I-- > TrailLimits[0];) {
    Var V = Trail[I].var();
    if (!Seen[V])
      continue;
    Seen[V] = 0;
    ClauseRef R = Reasons[V];
    if (R == NoReason) {
      FinalConflict.push_back(Trail[I]);
    } else {
      for (Lit L : Clauses[R].Lits)
        if (L.var() != V && level(L.var()) > 0)
          Seen[L.var()] = 1;
    }
  }
}

void SatSolver::backtrack(uint32_t Level) {
  if (currentLevel() <= Level)
    return;
  uint32_t Bound = TrailLimits[Level];
  for (size_t I = Trail.size(); I-- > Bound;) {
    Lit L = Trail[I];
    Var V = L.var();
    if (TheoryClient && I < TheoryHead)
      TheoryClient->undoLit(L);
    Assigns[V] = ValueUnassigned;
    Reasons[V] = NoReason;
    if (HeapPos[V] == UINT32_MAX)
      heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLimits.resize(Level);
  PropagateHead = Bound;
  TheoryHead = std::min<uint32_t>(TheoryHead, Bound);
}

Lit SatSolver::pickBranchLit() {
  while (!heapEmpty()) {
    Var V = heapPop();
    if (Assigns[V] == ValueUnassigned)
      return Phase[V] ? Lit::pos(V) : Lit::neg(V);
  }
  return Lit();
}

// ----------------------------------------------------------- VSIDS heap

void SatSolver::heapInsert(Var V) {
  HeapPos[V] = static_cast<uint32_t>(Heap.size());
  Heap.push_back(V);
  heapUp(HeapPos[V]);
}

void SatSolver::heapUp(uint32_t Pos) {
  Var V = Heap[Pos];
  while (Pos > 0) {
    uint32_t Parent = (Pos - 1) / 2;
    if (Activity[Heap[Parent]] >= Activity[V])
      break;
    Heap[Pos] = Heap[Parent];
    HeapPos[Heap[Pos]] = Pos;
    Pos = Parent;
  }
  Heap[Pos] = V;
  HeapPos[V] = Pos;
}

void SatSolver::heapDown(uint32_t Pos) {
  Var V = Heap[Pos];
  for (;;) {
    uint32_t Child = 2 * Pos + 1;
    if (Child >= Heap.size())
      break;
    if (Child + 1 < Heap.size() &&
        Activity[Heap[Child + 1]] > Activity[Heap[Child]])
      ++Child;
    if (Activity[Heap[Child]] <= Activity[V])
      break;
    Heap[Pos] = Heap[Child];
    HeapPos[Heap[Pos]] = Pos;
    Pos = Child;
  }
  Heap[Pos] = V;
  HeapPos[V] = Pos;
}

Var SatSolver::heapPop() {
  Var Top = Heap[0];
  HeapPos[Top] = UINT32_MAX;
  Var Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap[0] = Last;
    HeapPos[Last] = 0;
    heapDown(0);
  }
  return Top;
}

// ----------------------------------------------------------- reduce DB

void SatSolver::reduceDb() {
  // Collect learned clauses that are not currently a reason, sort by
  // activity, and drop the least active half. ClauseRefs are compacted,
  // so watches and reasons are rebuilt afterwards.
  std::vector<bool> Locked(Clauses.size(), false);
  for (Lit L : Trail) {
    ClauseRef R = Reasons[L.var()];
    if (R != NoReason && R != TheoryLocked)
      Locked[R] = true;
  }

  std::vector<ClauseRef> Candidates;
  for (ClauseRef R = 0; R < Clauses.size(); ++R)
    if (Clauses[R].Learned && !Locked[R] && Clauses[R].Lits.size() > 2)
      Candidates.push_back(R);
  if (Candidates.size() < 100)
    return;
  std::sort(Candidates.begin(), Candidates.end(),
            [this](ClauseRef A, ClauseRef B) {
              return Clauses[A].Activity < Clauses[B].Activity;
            });
  std::vector<bool> Remove(Clauses.size(), false);
  for (size_t I = 0; I < Candidates.size() / 2; ++I)
    Remove[Candidates[I]] = true;

  std::vector<ClauseRef> NewRef(Clauses.size(), NoReason);
  size_t Kept = 0;
  uint64_t FreedBytes = 0;
  for (ClauseRef R = 0; R < Clauses.size(); ++R) {
    if (Remove[R]) {
      FreedBytes += sizeof(Clause) + Clauses[R].Lits.size() * sizeof(Lit);
      continue;
    }
    NewRef[R] = static_cast<ClauseRef>(Kept);
    if (Kept != R)
      Clauses[Kept] = std::move(Clauses[R]);
    ++Kept;
  }
  Clauses.resize(Kept);
  Mem.discharge(FreedBytes);

  for (auto &WatchList : Watches)
    WatchList.clear();
  for (ClauseRef R = 0; R < Clauses.size(); ++R) {
    const Clause &C = Clauses[R];
    Watches[(~C.Lits[0]).X].push_back({R, C.Lits[1]});
    Watches[(~C.Lits[1]).X].push_back({R, C.Lits[0]});
  }
  for (ClauseRef &R : Reasons)
    if (R != NoReason && R != TheoryLocked)
      R = NewRef[R];
}

uint64_t SatSolver::numLearnedClauses() const {
  uint64_t N = 0;
  for (const Clause &C : Clauses)
    if (C.Learned)
      ++N;
  return N;
}

// ----------------------------------------------------------- main loop

/// Luby restart sequence (1,1,2,1,1,2,4,...).
static uint64_t luby(uint64_t I) {
  // Find the finite subsequence containing index I and the index within it.
  uint64_t Size = 1;
  uint64_t Seq = 0;
  while (Size < I + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != I) {
    Size = (Size - 1) / 2;
    --Seq;
    I = I % Size;
  }
  return 1ULL << Seq;
}

SatResult SatSolver::solve(Deadline Limit) {
  return solve(std::vector<Lit>(), Limit);
}

SatResult SatSolver::solve(const std::vector<Lit> &Assumed, Deadline Limit) {
  FinalConflict.clear();
  AssumptionConflicts = 0;
  Conflicts = Decisions = Propagations = Restarts = 0;
  if (AllocFailed)
    return SatResult::Unknown;
  if (Unsatisfiable)
    return SatResult::Unsat;
  Assumptions = Assumed;
  // A previous solve() leaves its final trail in place (the theory state
  // backs the model); start the new search from the root.
  backtrack(0);
  uint64_t ConflictBudget = 64 * luby(Restarts);
  uint64_t ConflictsSinceRestart = 0;
  uint64_t LearnedSinceReduce = 0;
  std::vector<Lit> TheoryConflict;
  std::vector<Lit> Learned;

  for (uint64_t Iteration = 0;; ++Iteration) {
    if ((Iteration & 1023) == 0 && Limit.expired()) {
      backtrack(0);
      return SatResult::Unknown;
    }

    ClauseRef Conflict = propagate();

    // Theory sync: stream newly assigned literals to the theory.
    bool TheoryFailed = false;
    if (Conflict == NoReason && TheoryClient) {
      while (TheoryHead < Trail.size()) {
        TheoryConflict.clear();
        if (!TheoryClient->assertLit(Trail[TheoryHead], TheoryConflict)) {
          TheoryFailed = true;
          break;
        }
        ++TheoryHead;
      }
    }

    if (Conflict != NoReason || TheoryFailed) {
      ++Conflicts;
      ++ConflictsSinceRestart;
      if (currentLevel() == 0) {
        // A conflict below every assumption refutes the clause database
        // itself — this and only this makes the solver permanently unsat.
        Unsatisfiable = true;
        backtrack(0);
        return SatResult::Unsat;
      }
      uint32_t BacktrackLevel = 0;
      analyze(TheoryFailed ? TheoryLocked : Conflict, TheoryConflict,
              Learned, BacktrackLevel);
      backtrack(BacktrackLevel);
      if (Learned.size() == 1) {
        if (!enqueue(Learned[0], NoReason)) {
          Unsatisfiable = true;
          return SatResult::Unsat;
        }
      } else {
        ClauseRef Ref = attachClause(Learned, /*Learned=*/true);
        enqueue(Learned[0], Ref);
        ++LearnedSinceReduce;
      }
      decayActivities();
      continue;
    }

    // No conflict.
    if (ConflictsSinceRestart >= ConflictBudget) {
      backtrack(0);
      ConflictsSinceRestart = 0;
      ConflictBudget = 64 * luby(++Restarts);
      continue;
    }

    if (LearnedSinceReduce > 8000 && currentLevel() == 0) {
      reduceDb();
      LearnedSinceReduce = 0;
    }

    // Plant pending assumptions as pseudo-decisions (in order, one level
    // each) before any real branching; restarts pop and replant them.
    if (currentLevel() < Assumptions.size()) {
      Lit A = Assumptions[currentLevel()];
      uint8_t V = litValue(A);
      if (V == 1) {
        // Already implied: open an empty level so indices keep lining up.
        TrailLimits.push_back(static_cast<uint32_t>(Trail.size()));
        continue;
      }
      if (V == 0) {
        // The database (plus earlier assumptions) refutes this one. Not a
        // global Unsat: report the failed subset and stay usable.
        ++AssumptionConflicts;
        analyzeFinal(A);
        backtrack(0);
        return SatResult::Unsat;
      }
      ++Decisions;
      TrailLimits.push_back(static_cast<uint32_t>(Trail.size()));
      enqueue(A, NoReason);
      continue;
    }

    Lit Decision = pickBranchLit();
    if (!Decision.valid()) {
      // Everything is assigned (and the theory accepted the full trail).
      Model.assign(Assigns.size(), false);
      for (size_t I = 0; I < Model.size(); ++I)
        Model[I] = Assigns[I] == 1;
      return SatResult::Sat;
    }
    ++Decisions;
    TrailLimits.push_back(static_cast<uint32_t>(Trail.size()));
    enqueue(Decision, NoReason);
  }
}
