//===- smt/Sat.h - CDCL SAT solver with theory hook -------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver: two-watched-literal
/// propagation, VSIDS branching with phase saving, 1UIP clause learning,
/// and Luby restarts. A Theory client can veto assignments (DPLL(T) with
/// lazy explanation); the difference-logic theory in DiffLogic.h plugs in
/// here to form the integer-difference-logic solver the paper's encoding
/// needs.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_SMT_SAT_H
#define RVP_SMT_SAT_H

#include "support/MemStats.h"
#include "support/Timer.h"

#include <cstdint>
#include <vector>

namespace rvp {

using Var = uint32_t;

/// A literal in MiniSat encoding: 2*var + (negated ? 1 : 0).
struct Lit {
  uint32_t X = UINT32_MAX;

  static Lit pos(Var V) { return {2 * V}; }
  static Lit neg(Var V) { return {2 * V + 1}; }
  static Lit fromInt(uint32_t Raw) { return {Raw}; }

  Var var() const { return X >> 1; }
  bool sign() const { return X & 1; } ///< true iff negated
  Lit operator~() const { return {X ^ 1}; }
  bool operator==(const Lit &O) const { return X == O.X; }
  bool operator!=(const Lit &O) const { return X != O.X; }
  bool valid() const { return X != UINT32_MAX; }
};

enum class SatResult { Sat, Unsat, Unknown };

/// Theory client interface. The solver streams literal assignments in
/// trail order; the theory may reject one by returning false and filling
/// \p Conflict with a clause that is false under the current assignment
/// (the negation of an inconsistent subset of asserted literals, including
/// the literal being asserted).
class Theory {
public:
  virtual ~Theory();

  /// Called for every literal the solver assigns (in trail order).
  /// Returning false signals a theory conflict.
  virtual bool assertLit(Lit L, std::vector<Lit> &Conflict) = 0;

  /// Called for every literal the solver unassigns, in reverse trail
  /// order; exactly matches previous successful assertLit calls.
  virtual void undoLit(Lit L) = 0;
};

/// The CDCL solver. Usage: newVar() / addClause() any number of times,
/// then solve(). After a Sat answer the assignment (and the theory state
/// behind it) stays live for model queries; call backtrackToRoot() before
/// adding more clauses, or let the next solve() reset implicitly.
class SatSolver {
public:
  explicit SatSolver(Theory *TheoryClient = nullptr)
      : TheoryClient(TheoryClient) {}

  Var newVar();
  uint32_t numVars() const { return static_cast<uint32_t>(Assigns.size()); }

  /// Adds a clause; returns false if the solver is already unsatisfiable.
  bool addClause(std::vector<Lit> Lits);

  /// Decides satisfiability; Deadline limits wall-clock time (Unknown on
  /// expiry — the paper gives each COP a fixed budget, Section 4).
  SatResult solve(Deadline Limit = Deadline());

  /// MiniSat-style incremental query: decides satisfiability under the
  /// conjunction of \p Assumed, planted as pseudo-decisions before any
  /// real branching. The clause database — original and learned clauses,
  /// activities, saved phases — persists across calls, so a sequence of
  /// related queries shares all derived lemmas (every learned clause is
  /// implied by the database alone, never by the assumptions, which enter
  /// learned clauses only in negated guard position).
  ///
  /// An Unsat answer caused by the assumptions does NOT poison the solver:
  /// failedAssumptions() then names an inconsistent subset and later calls
  /// (with other assumptions, or none) still work. Only a conflict at
  /// decision level 0 — independent of any assumption — makes the solver
  /// permanently unsatisfiable.
  SatResult solve(const std::vector<Lit> &Assumed,
                  Deadline Limit = Deadline());

  /// After solve(assumptions) returned Unsat because of the assumptions,
  /// an inconsistent subset of them (the final conflict, including the
  /// assumption that failed); empty when the clause database itself is
  /// unsatisfiable.
  const std::vector<Lit> &failedAssumptions() const { return FinalConflict; }

  /// Model access; only meaningful after solve() returned Sat.
  bool modelValue(Var V) const { return Model[V]; }

  /// Undoes all decisions (required before addClause() after a solve()).
  void backtrackToRoot() { backtrack(0); }

  // Statistics (reset by solve()).
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numPropagations() const { return Propagations; }
  uint64_t numRestarts() const { return Restarts; }
  /// Queries of this solve() refuted by the planted assumptions.
  uint64_t numAssumptionConflicts() const { return AssumptionConflicts; }
  /// Learned clauses currently retained in the database; persists across
  /// solve() calls (reduceDb drops the least active half when large).
  uint64_t numLearnedClauses() const;

  /// True once a clause-database allocation failed (today only via the
  /// `satdb.alloc` fault site; a real bad_alloc would land here too). The
  /// solver is sick, not unsat: solve() answers Unknown so callers take
  /// their degradation path instead of trusting a truncated database.
  bool allocFailed() const { return AllocFailed; }

private:
  using ClauseRef = uint32_t;
  static constexpr ClauseRef NoReason = UINT32_MAX;
  /// Sentinel reason for the "theory conflict clause" path.
  static constexpr ClauseRef TheoryLocked = UINT32_MAX - 1;

  struct Clause {
    std::vector<Lit> Lits;
    bool Learned = false;
    double Activity = 0;
  };

  struct Watcher {
    ClauseRef Ref;
    Lit Blocker;
  };

  // Assignment state. Value: 0 = false, 1 = true, 2 = unassigned.
  static constexpr uint8_t ValueUnassigned = 2;
  uint8_t litValue(Lit L) const {
    uint8_t V = Assigns[L.var()];
    return V == ValueUnassigned ? ValueUnassigned : V ^ (L.sign() ? 1 : 0);
  }

  bool enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef ConflictRef, const std::vector<Lit> &TheoryConflict,
               std::vector<Lit> &Learned, uint32_t &BacktrackLevel);
  /// Fills FinalConflict with the subset of planted assumptions whose
  /// conjunction the clause database refutes; \p FailedAssumption is the
  /// one found false when it was about to be planted.
  void analyzeFinal(Lit FailedAssumption);
  void backtrack(uint32_t Level);
  Lit pickBranchLit();
  void bumpVar(Var V);
  void bumpClause(Clause &C);
  void decayActivities();
  void reduceDb();
  ClauseRef attachClause(std::vector<Lit> Lits, bool Learned);
  uint32_t level(Var V) const { return Levels[V]; }
  uint32_t currentLevel() const {
    return static_cast<uint32_t>(TrailLimits.size());
  }

  // Heap operations for VSIDS.
  void heapInsert(Var V);
  void heapUp(uint32_t Pos);
  void heapDown(uint32_t Pos);
  Var heapPop();
  bool heapEmpty() const { return Heap.empty(); }

  Theory *TheoryClient;

  /// mem.clauses_* accounting of the clause database; charged per attached
  /// clause, discharged when reduceDb() compacts (support/MemStats.h).
  MemCharge Mem{MemPool::Clauses};

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by Lit.X
  std::vector<uint8_t> Assigns;              // per var
  std::vector<uint8_t> Phase;                // saved phases
  std::vector<uint32_t> Levels;              // per var
  std::vector<ClauseRef> Reasons;            // per var
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLimits;
  uint32_t PropagateHead = 0;
  uint32_t TheoryHead = 0; ///< trail prefix already pushed to the theory

  std::vector<double> Activity;
  std::vector<uint32_t> HeapPos; // UINT32_MAX if not in heap
  std::vector<Var> Heap;
  double VarInc = 1.0;
  double ClauseInc = 1.0;

  std::vector<bool> Model;
  bool Unsatisfiable = false;
  bool AllocFailed = false;

  /// Assumption literals of the solve() in progress, planted in order as
  /// pseudo-decisions at levels 1..Assumptions.size().
  std::vector<Lit> Assumptions;
  /// The failed assumption subset of the last Unsat-under-assumptions.
  std::vector<Lit> FinalConflict;

  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t AssumptionConflicts = 0;

  // Scratch buffers for analyze().
  std::vector<uint8_t> Seen;
};

} // namespace rvp

#endif // RVP_SMT_SAT_H
