//===- smt/IdlSolver.cpp - CDCL(T) solver for order formulas --------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Ties the pieces together: Tseitin-encodes an order formula into CNF
/// (positive polarity only — the formula language has no negation), binds
/// atom literals to ordering edges in the difference-logic theory, and runs
/// the CDCL solver. The model is read off the theory's topological order.
/// The encoding itself lives in Tseitin.h, shared with the incremental
/// session (Incremental.cpp).
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "smt/Tseitin.h"

#include "support/FaultInjector.h"
#include "support/Telemetry.h"

using namespace rvp;

SmtSolver::~SmtSolver() = default;

namespace {

/// Flushes the per-call search statistics into the global registry
/// (telemetry-enabled runs only).
void recordSolveTelemetry(const SatSolver &Sat, double Seconds) {
  MetricsRegistry &Reg = MetricsRegistry::global();
  Reg.counter("sat.decisions").add(Sat.numDecisions());
  Reg.counter("sat.propagations").add(Sat.numPropagations());
  Reg.counter("sat.conflicts").add(Sat.numConflicts());
  Reg.counter("sat.restarts").add(Sat.numRestarts());
  Reg.histogram("solver.idl.latency_seconds").record(Seconds);
}

class IdlSolver : public SmtSolver {
public:
  SatResult solve(const FormulaBuilder &FB, NodeRef Root, Deadline Limit,
                  OrderModel *ModelOut) override {
    const FormulaNode &RootNode = FB.node(Root);
    if (RootNode.Kind == FormulaKind::True)
      return SatResult::Sat; // no constraints; ModelOut stays empty
    if (RootNode.Kind == FormulaKind::False)
      return SatResult::Unsat;
    if (FaultInjector::shouldFail(faults::SolverTimeout))
      return SatResult::Unknown; // injected budget expiry

    Timer Clock;
    DiffLogicTheory Theory;
    SatSolver Sat(&Theory);
    TseitinEncoder Encoder(Sat, Theory);
    Lit RootLit = Encoder.encode(FB, Root);

    if (!Sat.addClause({RootLit})) {
      if (Telemetry::enabled())
        recordSolveTelemetry(Sat, Clock.seconds());
      return SatResult::Unsat;
    }

    SatResult Result = Sat.solve(Limit);
    if (Telemetry::enabled())
      recordSolveTelemetry(Sat, Clock.seconds());
    if (Result == SatResult::Sat && ModelOut)
      Encoder.readModel(*ModelOut);
    return Result;
  }

  const char *name() const override { return "idl"; }
};

} // namespace

std::unique_ptr<SmtSolver> rvp::createIdlSolver() {
  return std::make_unique<IdlSolver>();
}

std::unique_ptr<SmtSolver> rvp::createSolverByName(const std::string &Name) {
  if (Name == "idl" || Name.empty())
    return createIdlSolver();
  if (Name == "z3") {
    if (FaultInjector::shouldFail(faults::Z3Unavailable))
      return nullptr; // injected backend outage; callers fall back to idl
    return createZ3Solver();
  }
  return nullptr;
}
