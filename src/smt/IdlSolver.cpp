//===- smt/IdlSolver.cpp - CDCL(T) solver for order formulas --------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Ties the pieces together: Tseitin-encodes an order formula into CNF
/// (positive polarity only — the formula language has no negation), binds
/// atom literals to ordering edges in the difference-logic theory, and runs
/// the CDCL solver. The model is read off the theory's topological order.
///
//===----------------------------------------------------------------------===//

#include "smt/DiffLogic.h"
#include "smt/Solver.h"

#include "support/Compiler.h"
#include "support/Telemetry.h"

#include <map>

using namespace rvp;

SmtSolver::~SmtSolver() = default;

namespace {

/// Flushes the per-call search statistics into the global registry
/// (telemetry-enabled runs only).
void recordSolveTelemetry(const SatSolver &Sat, double Seconds) {
  MetricsRegistry &Reg = MetricsRegistry::global();
  Reg.counter("sat.decisions").add(Sat.numDecisions());
  Reg.counter("sat.propagations").add(Sat.numPropagations());
  Reg.counter("sat.conflicts").add(Sat.numConflicts());
  Reg.counter("sat.restarts").add(Sat.numRestarts());
  Reg.histogram("solver.idl.latency_seconds").record(Seconds);
}

class IdlSolver : public SmtSolver {
public:
  SatResult solve(const FormulaBuilder &FB, NodeRef Root, Deadline Limit,
                  OrderModel *ModelOut) override {
    const FormulaNode &RootNode = FB.node(Root);
    if (RootNode.Kind == FormulaKind::True)
      return SatResult::Sat; // no constraints; ModelOut stays empty
    if (RootNode.Kind == FormulaKind::False)
      return SatResult::Unsat;

    Timer Clock;
    DiffLogicTheory Theory;
    SatSolver Sat(&Theory);
    std::vector<Lit> LitOf(FB.numNodes(), Lit());
    std::map<std::pair<OrderVar, OrderVar>, Var> AtomVars;
    std::map<uint32_t, Var> BoolVars;

    // Post-order iterative encoding; children first.
    std::vector<std::pair<NodeRef, bool>> Work = {{Root, false}};
    while (!Work.empty()) {
      auto [Ref, ChildrenDone] = Work.back();
      Work.pop_back();
      if (LitOf[Ref].valid())
        continue;
      const FormulaNode &N = FB.node(Ref);
      switch (N.Kind) {
      case FormulaKind::True:
      case FormulaKind::False:
        // mkAnd/mkOr fold constants away; only the root can be constant,
        // and that case returned above.
        RVP_UNREACHABLE("constant below the root of a simplified formula");
      case FormulaKind::Atom: {
        // One boolean variable per unordered pair; the positive literal
        // asserts min<max, the negative one max<min (all order variables
        // denote distinct positions).
        OrderVar Lo = std::min(N.VarA, N.VarB);
        OrderVar Hi = std::max(N.VarA, N.VarB);
        auto [It, Inserted] = AtomVars.try_emplace({Lo, Hi}, 0);
        if (Inserted) {
          Var V = Sat.newVar();
          It->second = V;
          Theory.bindLit(Lit::pos(V), Lo, Hi);
          Theory.bindLit(Lit::neg(V), Hi, Lo);
        }
        LitOf[Ref] = N.VarA == Lo ? Lit::pos(It->second)
                                  : Lit::neg(It->second);
        break;
      }
      case FormulaKind::BoolVar: {
        auto [It, Inserted] = BoolVars.try_emplace(N.VarA, 0);
        if (Inserted)
          It->second = Sat.newVar();
        LitOf[Ref] =
            N.VarB ? Lit::neg(It->second) : Lit::pos(It->second);
        break;
      }
      case FormulaKind::And:
      case FormulaKind::Or: {
        if (!ChildrenDone) {
          Work.push_back({Ref, true});
          for (const NodeRef *C = FB.childBegin(Ref), *E = FB.childEnd(Ref);
               C != E; ++C)
            if (!LitOf[*C].valid())
              Work.push_back({*C, false});
          continue;
        }
        Var Gate = Sat.newVar();
        Lit G = Lit::pos(Gate);
        if (N.Kind == FormulaKind::And) {
          for (const NodeRef *C = FB.childBegin(Ref), *E = FB.childEnd(Ref);
               C != E; ++C)
            Sat.addClause({~G, LitOf[*C]});
        } else {
          std::vector<Lit> Clause = {~G};
          for (const NodeRef *C = FB.childBegin(Ref), *E = FB.childEnd(Ref);
               C != E; ++C)
            Clause.push_back(LitOf[*C]);
          Sat.addClause(std::move(Clause));
        }
        LitOf[Ref] = G;
        break;
      }
      }
    }

    if (!Sat.addClause({LitOf[Root]})) {
      if (Telemetry::enabled())
        recordSolveTelemetry(Sat, Clock.seconds());
      return SatResult::Unsat;
    }

    SatResult Result = Sat.solve(Limit);
    if (Telemetry::enabled())
      recordSolveTelemetry(Sat, Clock.seconds());
    if (Result == SatResult::Sat && ModelOut) {
      ModelOut->clear();
      for (const auto &[Pair, V] : AtomVars) {
        (void)V;
        auto Record = [&](OrderVar Variable) {
          uint32_t Pos = Theory.graph().positionOf(Variable);
          if (Pos != UINT32_MAX)
            (*ModelOut)[Variable] = Pos;
        };
        Record(Pair.first);
        Record(Pair.second);
      }
    }
    return Result;
  }

  const char *name() const override { return "idl"; }
};

} // namespace

std::unique_ptr<SmtSolver> rvp::createIdlSolver() {
  return std::make_unique<IdlSolver>();
}

std::unique_ptr<SmtSolver> rvp::createSolverByName(const std::string &Name) {
  if (Name == "idl" || Name.empty())
    return createIdlSolver();
  if (Name == "z3")
    return createZ3Solver();
  return nullptr;
}
