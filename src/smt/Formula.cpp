//===- smt/Formula.cpp - Difference-logic formulas -------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Formula.h"

#include "support/Compiler.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace rvp;

static uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

FormulaBuilder::FormulaBuilder() {
  Table.assign(256, TableSlot{0, EmptySlot});
  FormulaNode TrueNode;
  TrueNode.Kind = FormulaKind::True;
  Nodes.push_back(TrueNode);
  TrueRef = 0;
  FormulaNode FalseNode;
  FalseNode.Kind = FormulaKind::False;
  Nodes.push_back(FalseNode);
  FalseRef = 1;
}

void FormulaBuilder::growTable() {
  std::vector<TableSlot> Old(Table.size() * 2, TableSlot{0, EmptySlot});
  Old.swap(Table);
  const size_t Mask = Table.size() - 1;
  for (const TableSlot &S : Old) {
    if (S.Ref == EmptySlot)
      continue;
    size_t Slot = S.Hash & Mask;
    while (Table[Slot].Ref != EmptySlot)
      Slot = (Slot + 1) & Mask;
    Table[Slot] = S;
  }
}

NodeRef FormulaBuilder::intern(FormulaNode Node,
                               const std::vector<NodeRef> &Kids) {
  uint64_t Hash = hashCombine(static_cast<uint64_t>(Node.Kind), Node.VarA);
  Hash = hashCombine(Hash, Node.VarB);
  for (NodeRef Kid : Kids)
    Hash = hashCombine(Hash, Kid);

  const size_t Mask = Table.size() - 1;
  size_t Slot = Hash & Mask;
  while (Table[Slot].Ref != EmptySlot) {
    if (Table[Slot].Hash == Hash) {
      const FormulaNode &C = Nodes[Table[Slot].Ref];
      if (C.Kind == Node.Kind && C.VarA == Node.VarA &&
          C.VarB == Node.VarB && C.numChildren() == Kids.size() &&
          std::equal(Kids.begin(), Kids.end(),
                     Children.data() + C.ChildBegin))
        return Table[Slot].Ref;
    }
    Slot = (Slot + 1) & Mask;
  }

  Node.ChildBegin = static_cast<uint32_t>(Children.size());
  Children.append(Kids.data(), Kids.data() + Kids.size());
  Node.ChildEnd = static_cast<uint32_t>(Children.size());
  NodeRef Ref = static_cast<NodeRef>(Nodes.size());
  Nodes.push_back(Node);
  Table[Slot] = TableSlot{Hash, Ref};
  // Resize at ~70% load so probe chains stay short.
  if (++TableCount * 10 >= Table.size() * 7)
    growTable();
  if (Telemetry::enabled())
    Mem.charge(sizeof(FormulaNode) + Kids.size() * sizeof(NodeRef));
  return Ref;
}

NodeRef FormulaBuilder::mkAtom(OrderVar A, OrderVar B) {
  assert(A != B && "an event cannot precede itself");
  FormulaNode Node;
  Node.Kind = FormulaKind::Atom;
  Node.VarA = A;
  Node.VarB = B;
  return intern(Node, {});
}

NodeRef FormulaBuilder::mkBoolVar(uint32_t Id) {
  FormulaNode Node;
  Node.Kind = FormulaKind::BoolVar;
  Node.VarA = Id;
  Node.VarB = 0;
  return intern(Node, {});
}

NodeRef FormulaBuilder::mkNotBoolVar(uint32_t Id) {
  FormulaNode Node;
  Node.Kind = FormulaKind::BoolVar;
  Node.VarA = Id;
  Node.VarB = 1;
  return intern(Node, {});
}

NodeRef FormulaBuilder::mkNary(FormulaKind Kind,
                               std::vector<NodeRef> Input) {
  const bool IsAnd = Kind == FormulaKind::And;
  const NodeRef Neutral = IsAnd ? TrueRef : FalseRef;
  const NodeRef Absorbing = IsAnd ? FalseRef : TrueRef;

  // Flatten nested nodes of the same kind and drop neutral elements.
  std::vector<NodeRef> Flat;
  Flat.reserve(Input.size());
  for (size_t I = 0; I < Input.size(); ++I) {
    NodeRef Ref = Input[I];
    if (Ref == Absorbing)
      return Absorbing;
    if (Ref == Neutral)
      continue;
    const FormulaNode &N = Nodes[Ref];
    if (N.Kind == Kind) {
      for (uint32_t C = N.ChildBegin; C < N.ChildEnd; ++C)
        Input.push_back(Children[C]);
      continue;
    }
    Flat.push_back(Ref);
  }

  std::sort(Flat.begin(), Flat.end());
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());

  // Complement detection: atoms a<b and b<a (or a boolean variable and
  // its negation) together are contradictory (And) or exhaustive (Or).
  // Entries from earlier calls are invalidated by bumping the epoch, not
  // by clearing the container (see the field comment).
  ++AtomPairEpoch;
  for (NodeRef Ref : Flat) {
    const FormulaNode &N = Nodes[Ref];
    uint64_t Key, ReverseKey;
    if (N.Kind == FormulaKind::Atom) {
      Key = (static_cast<uint64_t>(N.VarA) << 32) | N.VarB;
      ReverseKey = (static_cast<uint64_t>(N.VarB) << 32) | N.VarA;
    } else if (N.Kind == FormulaKind::BoolVar) {
      constexpr uint64_t Tag = 1ULL << 63;
      Key = Tag | (static_cast<uint64_t>(N.VarB) << 32) | N.VarA;
      ReverseKey = Tag | (static_cast<uint64_t>(N.VarB ^ 1) << 32) | N.VarA;
    } else {
      continue;
    }
    auto It = AtomPairScratch.find(ReverseKey);
    if (It != AtomPairScratch.end() && It->second == AtomPairEpoch)
      return Absorbing;
    AtomPairScratch[Key] = AtomPairEpoch;
  }

  if (Flat.empty())
    return Neutral;
  if (Flat.size() == 1)
    return Flat[0];

  FormulaNode Node;
  Node.Kind = Kind;
  return intern(Node, Flat);
}

NodeRef FormulaBuilder::mkAnd(std::vector<NodeRef> Children) {
  return mkNary(FormulaKind::And, std::move(Children));
}

NodeRef FormulaBuilder::mkOr(std::vector<NodeRef> Children) {
  return mkNary(FormulaKind::Or, std::move(Children));
}

std::vector<OrderVar> FormulaBuilder::collectVars(NodeRef Root) const {
  std::vector<OrderVar> Vars;
  std::vector<NodeRef> Work = {Root};
  std::vector<bool> Seen(Nodes.size(), false);
  while (!Work.empty()) {
    NodeRef Ref = Work.back();
    Work.pop_back();
    if (Seen[Ref])
      continue;
    Seen[Ref] = true;
    const FormulaNode &N = Nodes[Ref];
    if (N.Kind == FormulaKind::Atom) {
      Vars.push_back(N.VarA);
      Vars.push_back(N.VarB);
      continue;
    }
    if (N.Kind == FormulaKind::BoolVar)
      continue;
    for (uint32_t C = N.ChildBegin; C < N.ChildEnd; ++C)
      Work.push_back(Children[C]);
  }
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars;
}

static std::string defaultVarName(OrderVar Var) {
  return "O" + std::to_string(Var);
}

std::string FormulaBuilder::toString(NodeRef Root,
                                     std::string (*VarName)(OrderVar)) const {
  if (!VarName)
    VarName = defaultVarName;
  const FormulaNode &N = Nodes[Root];
  switch (N.Kind) {
  case FormulaKind::True:
    return "true";
  case FormulaKind::False:
    return "false";
  case FormulaKind::Atom:
    return VarName(N.VarA) + " < " + VarName(N.VarB);
  case FormulaKind::BoolVar:
    return (N.VarB ? "!b" : "b") + std::to_string(N.VarA);
  case FormulaKind::And:
  case FormulaKind::Or: {
    const char *Op = N.Kind == FormulaKind::And ? " & " : " | ";
    std::string Out = "(";
    for (uint32_t C = N.ChildBegin; C < N.ChildEnd; ++C) {
      if (C != N.ChildBegin)
        Out += Op;
      Out += toString(Children[C], VarName);
    }
    return Out + ")";
  }
  }
  RVP_UNREACHABLE("unknown formula kind");
}
