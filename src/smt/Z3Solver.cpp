//===- smt/Z3Solver.cpp - Z3 backend for order formulas -------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Mirrors the paper's implementation choice (Z3/Yices via Integer
/// Difference Logic). Only built when the toolchain provides Z3; the
/// factory returns nullptr otherwise. Used to cross-validate the in-tree
/// CDCL(T) solver and as an alternative backend in the benches.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#ifdef RVP_HAVE_Z3

#include "support/Compiler.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <z3++.h>

#include <optional>

using namespace rvp;

namespace {

class Z3Solver : public SmtSolver {
public:
  SatResult solve(const FormulaBuilder &FB, NodeRef Root, Deadline Limit,
                  OrderModel *ModelOut) override {
    Timer Clock;
    // Z3 reports failures via exceptions; contain them at this boundary.
    SatResult Result;
    try {
      Result = solveImpl(FB, Root, Limit, ModelOut);
    } catch (const z3::exception &) {
      Result = SatResult::Unknown;
    }
    if (Telemetry::enabled()) {
      MetricsRegistry &Reg = MetricsRegistry::global();
      Reg.counter("solver.z3.calls").inc();
      Reg.histogram("solver.z3.latency_seconds").record(Clock.seconds());
    }
    return Result;
  }

  const char *name() const override { return "z3"; }

private:
  SatResult solveImpl(const FormulaBuilder &FB, NodeRef Root, Deadline Limit,
                      OrderModel *ModelOut) {
    if (FaultInjector::shouldFail(faults::SolverTimeout))
      return SatResult::Unknown; // injected budget expiry
    z3::context Ctx;
    z3::solver Solver(Ctx);
    // Budget accounting is explicit about "no limit": only a real deadline
    // is turned into a Z3 timeout (remainingSeconds() is a sentinel
    // otherwise).
    if (Limit.hasLimit()) {
      double Remaining = Limit.remainingSeconds();
      z3::params Params(Ctx);
      Params.set("timeout",
                 static_cast<unsigned>(Remaining * 1000.0 + 1));
      Solver.set(Params);
    }

    std::vector<std::optional<z3::expr>> ExprOf(FB.numNodes());
    std::vector<OrderVar> Vars = FB.collectVars(Root);
    std::unordered_map<OrderVar, std::optional<z3::expr>> Consts;
    for (OrderVar V : Vars)
      Consts.emplace(
          V, Ctx.int_const(("O" + std::to_string(V)).c_str()));

    // Post-order iterative translation.
    std::vector<std::pair<NodeRef, bool>> Work = {{Root, false}};
    while (!Work.empty()) {
      auto [Ref, ChildrenDone] = Work.back();
      Work.pop_back();
      if (ExprOf[Ref])
        continue;
      const FormulaNode &N = FB.node(Ref);
      switch (N.Kind) {
      case FormulaKind::True:
        ExprOf[Ref] = Ctx.bool_val(true);
        break;
      case FormulaKind::False:
        ExprOf[Ref] = Ctx.bool_val(false);
        break;
      case FormulaKind::Atom:
        ExprOf[Ref] = *Consts.at(N.VarA) < *Consts.at(N.VarB);
        break;
      case FormulaKind::BoolVar: {
        z3::expr B =
            Ctx.bool_const(("b" + std::to_string(N.VarA)).c_str());
        ExprOf[Ref] = N.VarB ? !B : B;
        break;
      }
      case FormulaKind::And:
      case FormulaKind::Or: {
        if (!ChildrenDone) {
          Work.push_back({Ref, true});
          for (const NodeRef *C = FB.childBegin(Ref), *E = FB.childEnd(Ref);
               C != E; ++C)
            if (!ExprOf[*C])
              Work.push_back({*C, false});
          continue;
        }
        z3::expr_vector Kids(Ctx);
        for (const NodeRef *C = FB.childBegin(Ref), *E = FB.childEnd(Ref);
             C != E; ++C)
          Kids.push_back(*ExprOf[*C]);
        ExprOf[Ref] = N.Kind == FormulaKind::And ? z3::mk_and(Kids)
                                                 : z3::mk_or(Kids);
        break;
      }
      }
    }

    Solver.add(*ExprOf[Root]);
    switch (Solver.check()) {
    case z3::unsat:
      return SatResult::Unsat;
    case z3::unknown:
      return SatResult::Unknown;
    case z3::sat:
      break;
    }

    if (ModelOut) {
      ModelOut->clear();
      z3::model Model = Solver.get_model();
      for (OrderVar V : Vars) {
        z3::expr Value = Model.eval(*Consts.at(V), /*model_completion=*/true);
        int64_t Numeral = 0;
        if (Value.is_numeral_i64(Numeral))
          (*ModelOut)[V] = Numeral;
      }
    }
    return SatResult::Sat;
  }
};

/// The incremental mirror: one persistent z3::solver, roots guarded by
/// fresh selector booleans, queries decided via check(assumptions) — Z3's
/// check_sat_assuming — and selectors retired with a permanent negative
/// unit, exactly like the in-tree IdlSession.
class Z3Session : public SmtSession {
public:
  Z3Session() : Solver(Ctx) {}

  void assertFormula(const FormulaBuilder &FB, NodeRef Root) override {
    try {
      Solver.add(translate(FB, Root));
    } catch (const z3::exception &) {
      Broken = true;
    }
  }

  SatResult query(const FormulaBuilder &FB, NodeRef Root, Deadline Limit,
                  OrderModel *ModelOut) override {
    Timer Clock;
    SatResult Result;
    try {
      Result = queryImpl(FB, Root, Limit, ModelOut);
    } catch (const z3::exception &) {
      Result = SatResult::Unknown;
    }
    if (Telemetry::enabled()) {
      MetricsRegistry &Reg = MetricsRegistry::global();
      Reg.counter("solver.incremental_calls").inc();
      Reg.histogram("solver.incremental.latency_seconds")
          .record(Clock.seconds());
    }
    return Result;
  }

  bool poisoned() const override { return Broken; }

  const char *name() const override { return "z3"; }

private:
  SatResult queryImpl(const FormulaBuilder &FB, NodeRef Root, Deadline Limit,
                      OrderModel *ModelOut) {
    if (FaultInjector::shouldFail(faults::SessionCorrupt))
      Broken = true;
    if (Broken)
      return SatResult::Unknown;
    if (FaultInjector::shouldFail(faults::SolverTimeout))
      return SatResult::Unknown; // injected budget expiry
    if (Limit.hasLimit()) {
      double Remaining = Limit.remainingSeconds();
      z3::params Params(Ctx);
      Params.set("timeout",
                 static_cast<unsigned>(Remaining * 1000.0 + 1));
      Solver.set(Params);
    }

    z3::expr Guarded = translate(FB, Root);
    z3::expr Selector = Ctx.bool_const(
        ("sel" + std::to_string(NumSelectors++)).c_str());
    Solver.add(z3::implies(Selector, Guarded));
    z3::expr_vector Assumptions(Ctx);
    Assumptions.push_back(Selector);
    z3::check_result Check = Solver.check(Assumptions);
    SatResult Result = Check == z3::unsat  ? SatResult::Unsat
                       : Check == z3::sat  ? SatResult::Sat
                                           : SatResult::Unknown;
    if (Result == SatResult::Sat && ModelOut) {
      ModelOut->clear();
      z3::model Model = Solver.get_model();
      for (OrderVar V : FB.collectVars(Root)) {
        z3::expr Value =
            Model.eval(*Consts.at(V), /*model_completion=*/true);
        int64_t Numeral = 0;
        if (Value.is_numeral_i64(Numeral))
          (*ModelOut)[V] = Numeral;
      }
    }
    // Retire the selector so learned lemmas stay while this query's pin
    // can never constrain a later one.
    Solver.add(!Selector);
    return Result;
  }

  /// Incremental translation: ExprOf caches by node reference (all calls
  /// use the same builder), Consts by order variable.
  z3::expr translate(const FormulaBuilder &FB, NodeRef Root) {
    if (ExprOf.size() < FB.numNodes())
      ExprOf.resize(FB.numNodes());
    for (OrderVar V : FB.collectVars(Root))
      Consts.emplace(V,
                     Ctx.int_const(("O" + std::to_string(V)).c_str()));

    std::vector<std::pair<NodeRef, bool>> Work = {{Root, false}};
    while (!Work.empty()) {
      auto [Ref, ChildrenDone] = Work.back();
      Work.pop_back();
      if (ExprOf[Ref])
        continue;
      const FormulaNode &N = FB.node(Ref);
      switch (N.Kind) {
      case FormulaKind::True:
        ExprOf[Ref] = Ctx.bool_val(true);
        break;
      case FormulaKind::False:
        ExprOf[Ref] = Ctx.bool_val(false);
        break;
      case FormulaKind::Atom:
        ExprOf[Ref] = *Consts.at(N.VarA) < *Consts.at(N.VarB);
        break;
      case FormulaKind::BoolVar: {
        z3::expr B =
            Ctx.bool_const(("b" + std::to_string(N.VarA)).c_str());
        ExprOf[Ref] = N.VarB ? !B : B;
        break;
      }
      case FormulaKind::And:
      case FormulaKind::Or: {
        if (!ChildrenDone) {
          Work.push_back({Ref, true});
          for (const NodeRef *C = FB.childBegin(Ref), *E = FB.childEnd(Ref);
               C != E; ++C)
            if (!ExprOf[*C])
              Work.push_back({*C, false});
          continue;
        }
        z3::expr_vector Kids(Ctx);
        for (const NodeRef *C = FB.childBegin(Ref), *E = FB.childEnd(Ref);
             C != E; ++C)
          Kids.push_back(*ExprOf[*C]);
        ExprOf[Ref] = N.Kind == FormulaKind::And ? z3::mk_and(Kids)
                                                 : z3::mk_or(Kids);
        break;
      }
      }
    }
    return *ExprOf[Root];
  }

  z3::context Ctx;
  z3::solver Solver;
  std::vector<std::optional<z3::expr>> ExprOf;
  std::unordered_map<OrderVar, std::optional<z3::expr>> Consts;
  uint64_t NumSelectors = 0;
  bool Broken = false;
};

} // namespace

std::unique_ptr<SmtSolver> rvp::createZ3Solver() {
  return std::make_unique<Z3Solver>();
}

std::unique_ptr<rvp::SmtSession> rvp::createZ3Session() {
  return std::make_unique<Z3Session>();
}

bool rvp::z3Available() { return true; }

#else // !RVP_HAVE_Z3

std::unique_ptr<rvp::SmtSolver> rvp::createZ3Solver() { return nullptr; }

std::unique_ptr<rvp::SmtSession> rvp::createZ3Session() { return nullptr; }

bool rvp::z3Available() { return false; }

#endif
