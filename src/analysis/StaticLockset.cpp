//===- analysis/StaticLockset.cpp - Must/may lockset analysis ---------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticLockset.h"

#include "analysis/Dataflow.h"

#include <algorithm>

using namespace rvp;

namespace {

/// Shared transfer: bump/drop the acquisition count of the node's lock.
/// Release saturates at zero (matching the runtime, which errors out — the
/// lint reports that separately from the pre-state).
template <bool Saturating>
void applyLockEffect(const CfgNode &N,
                     const std::map<std::string, uint32_t> &LockIdx,
                     std::vector<uint32_t> &Counts) {
  if (N.K != CfgNode::Kind::Acquire && N.K != CfgNode::Kind::Release)
    return;
  auto It = LockIdx.find(N.S->Name);
  if (It == LockIdx.end())
    return; // undeclared lock: parser already rejected, be defensive
  uint32_t &C = Counts[It->second];
  if (N.K == CfgNode::Kind::Acquire) {
    if (!Saturating || C < StaticLocksetAnalysis::MayCap)
      ++C;
  } else if (C > 0) {
    --C;
  }
}

struct MustLocksets {
  using Domain = std::vector<uint32_t>;
  const std::map<std::string, uint32_t> &LockIdx;
  size_t NumLocks;

  Domain boundary() const { return Domain(NumLocks, 0); }

  bool meet(Domain &Out, const Domain &In) const {
    bool Changed = false;
    for (size_t I = 0; I < Out.size(); ++I)
      if (In[I] < Out[I]) {
        Out[I] = In[I];
        Changed = true;
      }
    return Changed;
  }

  void transfer(const CfgNode &N, Domain &D) const {
    applyLockEffect<false>(N, LockIdx, D);
  }
};

struct MayLocksets {
  using Domain = std::vector<uint32_t>;
  const std::map<std::string, uint32_t> &LockIdx;
  size_t NumLocks;

  Domain boundary() const { return Domain(NumLocks, 0); }

  bool meet(Domain &Out, const Domain &In) const {
    bool Changed = false;
    for (size_t I = 0; I < Out.size(); ++I)
      if (In[I] > Out[I]) {
        Out[I] = In[I];
        Changed = true;
      }
    return Changed;
  }

  void transfer(const CfgNode &N, Domain &D) const {
    applyLockEffect<true>(N, LockIdx, D);
  }
};

} // namespace

StaticLocksetAnalysis::StaticLocksetAnalysis(const Program &P, const Cfg &G) {
  for (const LockDecl &L : P.Locks) {
    LockIdx[L.Name] = static_cast<uint32_t>(LockNames.size());
    LockNames.push_back(L.Name);
  }

  MustLocksets MustA{LockIdx, LockNames.size()};
  MayLocksets MayA{LockIdx, LockNames.size()};
  auto MustR = solveDataflow(G, MustA);
  auto MayR = solveDataflow(G, MayA);

  Must = std::move(MustR.In);
  May = std::move(MayR.In);
  Reached = std::move(MustR.Reached);
  // Unreached nodes: give them properly-sized zero vectors so callers can
  // index safely even if they forget the reached() check.
  for (uint32_t Id = 0; Id < G.size(); ++Id)
    if (!Reached[Id]) {
      Must[Id].assign(LockNames.size(), 0);
      May[Id].assign(LockNames.size(), 0);
    }
}

int StaticLocksetAnalysis::lockIndex(const std::string &Name) const {
  auto It = LockIdx.find(Name);
  return It == LockIdx.end() ? -1 : static_cast<int>(It->second);
}

std::vector<std::string>
StaticLocksetAnalysis::mustHeldNames(uint32_t Node) const {
  std::vector<std::string> Out;
  if (!Reached[Node])
    return Out;
  for (size_t I = 0; I < LockNames.size(); ++I)
    if (Must[Node][I] > 0)
      Out.push_back(LockNames[I]);
  return Out;
}
