//===- analysis/Cfg.h - Control-flow graphs over MiniRV ----------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement-granularity control-flow graphs over MiniRV thread bodies, the
/// substrate of the static analyses in this directory. One node per program
/// point: a synthetic Entry/Exit pair, one node per straight-line statement,
/// one per `if`/`while` condition, and explicit Acquire/Release nodes for
/// `lock`/`unlock` and the two halves of `sync` — so lock-state transfer
/// functions never have to look inside compound statements.
///
/// Conditions that fold to a constant (no shared or local reads) drop the
/// untaken edge, which is what makes `if (0) { ... }` bodies and code after
/// `while (1) { ... }` reachable-analysis targets rather than noise.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_CFG_H
#define RVP_ANALYSIS_CFG_H

#include "lang/Ast.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace rvp {

/// Folds \p E to a constant when it contains no variable references
/// (literals, unary/binary operators over constants). Division by zero and
/// friends return nullopt rather than guessing.
std::optional<int64_t> foldConstant(const Expr &E);

/// One CFG node. `S` points into the ThreadDecl the graph was built from,
/// which must outlive the Cfg.
struct CfgNode {
  enum class Kind : uint8_t {
    Entry,   ///< synthetic; no statement
    Exit,    ///< synthetic; no statement
    Stmt,    ///< straight-line statement (assign, local, spawn, join, ...)
    Branch,  ///< `if`/`while` condition evaluation
    Acquire, ///< `lock` statement or the entry half of `sync`
    Release, ///< `unlock` statement or the exit half of `sync`
  };

  Kind K = Kind::Stmt;
  const Stmt *S = nullptr; ///< null for Entry/Exit
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::vector<uint32_t> Succs, Preds;
};

/// The CFG of one thread body. Node 0 is Entry, node 1 is Exit; statement
/// nodes appear in source order after them.
class Cfg {
public:
  explicit Cfg(const ThreadDecl &T);

  const ThreadDecl &thread() const { return *Decl; }
  uint32_t entry() const { return 0; }
  uint32_t exit() const { return 1; }
  uint32_t size() const { return static_cast<uint32_t>(Nodes.size()); }
  const CfgNode &node(uint32_t Id) const { return Nodes[Id]; }
  const std::vector<CfgNode> &nodes() const { return Nodes; }

  /// Node ids reachable from Entry, in reverse post-order (a good worklist
  /// seed for forward dataflow).
  const std::vector<uint32_t> &reversePostOrder() const { return Rpo; }

  bool reachable(uint32_t Id) const { return Reachable[Id]; }

  /// Statement nodes not reachable from Entry, in source order — the
  /// unreachable-code diagnostic's input. Synthetic nodes are excluded.
  std::vector<uint32_t> unreachableNodes() const;

private:
  uint32_t addNode(CfgNode::Kind K, const Stmt *S, uint32_t Line,
                   uint32_t Col);
  void addEdge(uint32_t From, uint32_t To);
  /// Lowers \p Body; every node in \p Dangling wants an edge to the next
  /// program point. Returns the dangling exits of the block.
  std::vector<uint32_t> buildBlock(const std::vector<StmtPtr> &Body,
                                   std::vector<uint32_t> Dangling);
  void computeReachability();

  const ThreadDecl *Decl;
  std::vector<CfgNode> Nodes;
  std::vector<bool> Reachable;
  std::vector<uint32_t> Rpo;
};

} // namespace rvp

#endif // RVP_ANALYSIS_CFG_H
