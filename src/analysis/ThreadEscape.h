//===- analysis/ThreadEscape.h - Thread-escape / sharing analysis -*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Which shared variables can actually be accessed by two threads *at the
/// same time*? The analysis combines per-thread access sets with the
/// fork/join structure of `main`:
///
///  * every thread body's shared reads/writes are collected syntactically
///    (arrays at base-name granularity — static analysis cannot resolve
///    indices, matching the implicit-branch treatment of Section 4);
///  * `spawn`/`join` statements at the *top level* of `main` delimit each
///    thread's live interval within main's program order. A spawn or join
///    nested under a branch or loop, issued by a non-main thread, or
///    missing altogether widens the interval to "always live" — the
///    conservative direction;
///  * two spawned threads may run in parallel unless one is joined (at top
///    level) before the other is spawned; a `main` access may overlap a
///    thread unless it sits before the spawn or after the join.
///
/// A variable none of whose accessor pairs may overlap is *thread-local in
/// time*: no data race on it is possible in any execution, even though more
/// than one thread touches it. This feeds the `never-shared` lint and the
/// sound static COP pruning (fork/join order is must-happen-before, so the
/// dynamic detectors agree on every such pair).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_THREADESCAPE_H
#define RVP_ANALYSIS_THREADESCAPE_H

#include "lang/Ast.h"

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace rvp {

/// Live interval of a thread in main's top-level statement order.
/// Spawn/Join are statement indices; the defaults mean "live for the whole
/// program" (the conservative assumption).
struct ThreadInterval {
  static constexpr int64_t AlwaysBefore =
      std::numeric_limits<int64_t>::min();
  static constexpr int64_t AlwaysAfter = std::numeric_limits<int64_t>::max();

  int64_t Spawn = AlwaysBefore; ///< top-level index of the unique spawn
  int64_t Join = AlwaysAfter;   ///< top-level index of the unique join
};

class ThreadEscapeAnalysis {
public:
  explicit ThreadEscapeAnalysis(const Program &P);

  /// Thread indices (into Program::Threads) whose bodies mention \p Var;
  /// array elements query by base name. Sorted ascending.
  const std::vector<uint32_t> &accessors(const std::string &Var) const;

  bool isWritten(const std::string &Var) const;
  bool isRead(const std::string &Var) const;

  /// May threads \p A and \p B (Program::Threads indices) ever run
  /// concurrently? Thread-level: main is conservatively concurrent with
  /// every thread it spawns (see lineMayOverlap for the refined query).
  bool mayHappenInParallel(uint32_t A, uint32_t B) const;

  /// Refined main-vs-thread query: may code of \p Thread run concurrently
  /// with main's statement covering source line \p MainLine? Unknown lines
  /// answer true (conservative).
  bool lineMayOverlap(uint32_t MainLine, uint32_t Thread) const;

  /// True when two different threads may access \p Var concurrently. Main
  /// accesses are checked per site against each thread's live interval.
  bool isThreadShared(const std::string &Var) const;

  /// Shared declarations proven never concurrently accessed.
  uint64_t threadLocalDeclCount() const;

  const ThreadInterval &interval(uint32_t Thread) const {
    return Intervals[Thread];
  }

private:
  struct VarInfo {
    std::vector<uint32_t> Accessors; ///< sorted thread indices
    bool Written = false;
    bool Read = false;
    /// Top-level indices of main statements accessing the variable.
    std::vector<int64_t> MainSites;
  };

  const VarInfo *info(const std::string &Var) const;

  const Program &Prog;
  std::map<std::string, VarInfo> Vars;
  std::vector<ThreadInterval> Intervals; ///< by thread index; [0] unused
  /// Line → (min, max) top-level index of main statements covering it.
  std::map<uint32_t, std::pair<int64_t, int64_t>> MainLineIndex;
};

} // namespace rvp

#endif // RVP_ANALYSIS_THREADESCAPE_H
