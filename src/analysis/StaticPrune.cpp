//===- analysis/StaticPrune.cpp - Sound static COP pruning ------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticPrune.h"

#include "analysis/AstWalk.h"
#include "analysis/Cfg.h"
#include "analysis/StaticLockset.h"
#include "support/Telemetry.h"

using namespace rvp;

namespace {

/// Parses the compiler's "L<line>" location names; 0 means unknown.
uint32_t parseLocLine(const std::string &Name) {
  if (Name.size() < 2 || Name[0] != 'L')
    return 0;
  uint32_t Line = 0;
  for (size_t I = 1; I < Name.size(); ++I) {
    if (Name[I] < '0' || Name[I] > '9')
      return 0;
    Line = Line * 10 + static_cast<uint32_t>(Name[I] - '0');
  }
  return Line;
}

} // namespace

StaticPruneOracle::StaticPruneOracle(const Program &P)
    : Escape(P), Mhb(P), Ranges(P), NumThreads(P.Threads.size()) {
  MustLockByLine.resize(NumThreads);
  for (uint32_t T = 0; T < P.Threads.size(); ++T) {
    Cfg G(P.Threads[T]);
    StaticLocksetAnalysis LS(P, G);
    std::map<uint32_t, uint64_t> &ByLine = MustLockByLine[T];

    for (uint32_t Id = 0; Id < G.size(); ++Id) {
      const CfgNode &N = G.node(Id);
      if (!G.reachable(Id) || !N.S)
        continue; // unreached nodes never produce events
      uint64_t Mask = 0;
      const std::vector<uint32_t> &Counts = LS.mustAt(Id);
      for (size_t L = 0; L < Counts.size() && L < 64; ++L)
        if (Counts[L] > 0)
          Mask |= uint64_t(1) << L;
      // A line's mask is the AND over every node that can emit an access
      // event attributed to that line: writes land on the statement line
      // of Assign/ArrayAssign, reads on each owned expression's line.
      // Acquire/Release/branch nodes sharing the line (e.g. a one-line
      // `sync m { x = 1; }`) never produce accesses themselves, so they
      // must not weaken the intersection — only their expressions count.
      auto Register = [&](uint32_t Line) {
        if (Line == 0)
          return;
        auto [It, Fresh] = ByLine.try_emplace(Line, Mask);
        if (!Fresh)
          It->second &= Mask;
      };
      if (N.S->K == Stmt::Kind::Assign || N.S->K == Stmt::Kind::ArrayAssign)
        Register(N.Line);
      forEachOwnExprNode(*N.S, [&](const Expr &E) { Register(E.Line); });
    }
  }
}

void StaticPruneOracle::bind(const Trace &T) {
  Bound = &T;
  LocLine.clear();
  for (const Event &E : T.events()) {
    if (E.Loc == UnknownLoc)
      continue;
    if (E.Loc >= LocLine.size())
      LocLine.resize(E.Loc + 1, 0);
    if (LocLine[E.Loc] == 0)
      LocLine[E.Loc] = parseLocLine(T.locName(E.Loc));
  }
}

uint64_t StaticPruneOracle::mustLocksAt(uint32_t Thread,
                                        uint32_t Line) const {
  const std::map<uint32_t, uint64_t> &ByLine = MustLockByLine[Thread];
  auto It = ByLine.find(Line);
  return It == ByLine.end() ? 0 : It->second;
}

uint32_t StaticPruneOracle::lineOf(const Event &E) const {
  return E.Loc != UnknownLoc && E.Loc < LocLine.size() ? LocLine[E.Loc] : 0;
}

bool StaticPruneOracle::prunable(const Trace &T, EventId A,
                                 EventId B) const {
  if (Bound != &T)
    return false; // unbound or different trace: no information
  const Event &Ea = T[A];
  const Event &Eb = T[B];
  uint32_t Ta = Ea.Tid, Tb = Eb.Tid;
  if (Ta == Tb || Ta >= NumThreads || Tb >= NumThreads)
    return false;
  uint32_t La = lineOf(Ea);
  uint32_t Lb = lineOf(Eb);

  // 1. Temporal disjointness through main's fork/join structure: the
  // window sees the end/join/fork/begin chain between the events, so MHB
  // orders them for every technique.
  if (!Escape.mayHappenInParallel(Ta, Tb) ||
      (Ta == 0 && La != 0 && !Escape.lineMayOverlap(La, Tb)) ||
      (Tb == 0 && Lb != 0 && !Escape.lineMayOverlap(Lb, Ta))) {
    PrunedInterval.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // 2. Common must-held lock: the accesses sit in critical sections of
  // the same lock in every execution; mutual exclusion orders them in
  // every technique (boundary sections are closed by the encodings).
  if (La != 0 && Lb != 0 &&
      (mustLocksAt(Ta, La) & mustLocksAt(Tb, Lb)) != 0) {
    PrunedLockset.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // 3. Static must-happen-before beyond stage 1's top-level intervals:
  // fork/join dominance orders the statement pair in every execution
  // (analysis/StaticMhb.h), and the witnessing chain of events again
  // lies inside every window containing both.
  if (La != 0 && Lb != 0 &&
      (Mhb.orderedBefore(Ta, La, Tb, Lb) ||
       Mhb.orderedBefore(Tb, Lb, Ta, La))) {
    PrunedMhb.fetch_add(1, std::memory_order_relaxed);
    if (Telemetry::enabled()) {
      static Counter &MhbPruned =
          MetricsRegistry::global().counter("analysis.pruned_static_mhb");
      MhbPruned.add(1);
    }
    return true;
  }

  return false;
}

bool StaticPruneOracle::foldableBranch(const Trace &T,
                                       EventId Branch) const {
  if (Bound != &T)
    return false;
  const Event &E = T[Branch];
  if (E.Tid >= NumThreads)
    return false;
  return Ranges.branchConstantAt(E.Tid, lineOf(E));
}
