//===- analysis/ValueRange.cpp - Interval value-range dataflow --------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ValueRange.h"

#include "analysis/AstWalk.h"
#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"

#include <algorithm>
#include <optional>

using namespace rvp;

//===----------------------------------------------------------------------===//
// Interval arithmetic
//===----------------------------------------------------------------------===//

namespace {

constexpr int64_t NegInf = Interval::NegInf;
constexpr int64_t PosInf = Interval::PosInf;

bool isInf(int64_t V) { return V == NegInf || V == PosInf; }

/// a + b saturating into the sentinels. Mixed infinities cannot occur in
/// interval addition (lower bounds add lower bounds), but saturate low for
/// safety.
int64_t satAdd(int64_t A, int64_t B) {
  if (A == NegInf || B == NegInf)
    return NegInf;
  if (A == PosInf || B == PosInf)
    return PosInf;
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    return (A > 0) ? PosInf : NegInf;
  return R;
}

int64_t satNeg(int64_t A) {
  if (A == NegInf)
    return PosInf;
  if (A == PosInf)
    return NegInf;
  return -A;
}

Interval negate(const Interval &V) {
  if (V.isBottom())
    return Interval::bottom();
  return Interval::range(satNeg(V.Hi), satNeg(V.Lo));
}

/// Exact product or nullopt on sentinel/overflow.
std::optional<int64_t> checkedMul(int64_t A, int64_t B) {
  if (isInf(A) || isInf(B))
    return std::nullopt;
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    return std::nullopt;
  return R;
}

Interval boolInterval() { return Interval::range(0, 1); }
Interval trueInterval() { return Interval::constant(1); }
Interval falseInterval() { return Interval::constant(0); }

} // namespace

bool Interval::joinWith(const Interval &O) {
  if (O.Bottom)
    return false;
  if (Bottom) {
    *this = O;
    return true;
  }
  bool Changed = false;
  if (O.Lo < Lo) {
    Lo = O.Lo;
    Changed = true;
  }
  if (O.Hi > Hi) {
    Hi = O.Hi;
    Changed = true;
  }
  return Changed;
}

void Interval::widenAgainst(const Interval &Old) {
  if (Bottom || Old.Bottom)
    return;
  if (Lo < Old.Lo)
    Lo = NegInf;
  if (Hi > Old.Hi)
    Hi = PosInf;
}

Interval rvp::evalUnary(UnOp Op, const Interval &V) {
  if (V.isBottom())
    return Interval::bottom();
  switch (Op) {
  case UnOp::Neg:
    return negate(V);
  case UnOp::Not:
    if (V.excludesZero())
      return falseInterval();
    if (V.isZero())
      return trueInterval();
    return boolInterval();
  }
  return Interval::top();
}

Interval rvp::evalBinary(BinOp Op, const Interval &L, const Interval &R) {
  if (L.isBottom() || R.isBottom())
    return Interval::bottom();
  switch (Op) {
  case BinOp::Add:
    return Interval::range(satAdd(L.Lo, R.Lo), satAdd(L.Hi, R.Hi));
  case BinOp::Sub: {
    Interval N = negate(R);
    return Interval::range(satAdd(L.Lo, N.Lo), satAdd(L.Hi, N.Hi));
  }
  case BinOp::Mul: {
    auto P1 = checkedMul(L.Lo, R.Lo), P2 = checkedMul(L.Lo, R.Hi);
    auto P3 = checkedMul(L.Hi, R.Lo), P4 = checkedMul(L.Hi, R.Hi);
    if (!P1 || !P2 || !P3 || !P4)
      return Interval::top();
    return Interval::range(std::min({*P1, *P2, *P3, *P4}),
                           std::max({*P1, *P2, *P3, *P4}));
  }
  case BinOp::Div: {
    // Division by zero is a runtime error; only a constant nonzero divisor
    // keeps the quotient predictable (C++ truncation toward zero).
    if (!R.isConstant() || R.Lo == 0 || isInf(L.Lo) || isInf(L.Hi))
      return Interval::top();
    int64_t Q1 = L.Lo / R.Lo, Q2 = L.Hi / R.Lo;
    return Interval::range(std::min(Q1, Q2), std::max(Q1, Q2));
  }
  case BinOp::Mod:
    if (L.isConstant() && R.isConstant() && R.Lo != 0)
      return Interval::constant(L.Lo % R.Lo);
    // Non-negative dividend, positive divisor: remainder in [0, Hi-1].
    if (!isInf(R.Hi) && L.Lo >= 0 && R.Lo > 0)
      return Interval::range(0, R.Hi - 1);
    return Interval::top();
  case BinOp::Eq:
    if (L.isConstant() && R.isConstant())
      return L.Lo == R.Lo ? trueInterval() : falseInterval();
    if (L.Hi < R.Lo || R.Hi < L.Lo) // disjoint: never equal
      return falseInterval();
    return boolInterval();
  case BinOp::Ne:
    if (L.isConstant() && R.isConstant())
      return L.Lo != R.Lo ? trueInterval() : falseInterval();
    if (L.Hi < R.Lo || R.Hi < L.Lo)
      return trueInterval();
    return boolInterval();
  case BinOp::Lt:
    if (L.Hi < R.Lo)
      return trueInterval();
    if (L.Lo >= R.Hi)
      return falseInterval();
    return boolInterval();
  case BinOp::Le:
    if (L.Hi <= R.Lo)
      return trueInterval();
    if (L.Lo > R.Hi)
      return falseInterval();
    return boolInterval();
  case BinOp::Gt:
    if (L.Lo > R.Hi)
      return trueInterval();
    if (L.Hi <= R.Lo)
      return falseInterval();
    return boolInterval();
  case BinOp::Ge:
    if (L.Lo >= R.Hi)
      return trueInterval();
    if (L.Hi < R.Lo)
      return falseInterval();
    return boolInterval();
  case BinOp::And:
    if (L.isZero() || R.isZero())
      return falseInterval();
    if (L.excludesZero() && R.excludesZero())
      return trueInterval();
    return boolInterval();
  case BinOp::Or:
    if (L.excludesZero() || R.excludesZero())
      return trueInterval();
    if (L.isZero() && R.isZero())
      return falseInterval();
    return boolInterval();
  }
  return Interval::top();
}

//===----------------------------------------------------------------------===//
// Per-thread flow-sensitive pass
//===----------------------------------------------------------------------===//

namespace {

/// Mirror of runtime/Compile.cpp's constantOf(): the compiler suppresses
/// the index branch event exactly for these shapes, so the static branch
/// model must agree event for event.
std::optional<int64_t> compilerConstantOf(const Expr &E) {
  if (E.K == Expr::Kind::IntLit)
    return E.IntValue;
  if (E.K == Expr::Kind::Unary && E.UOp == UnOp::Neg && E.Lhs)
    if (auto V = compilerConstantOf(*E.Lhs))
      return -*V;
  return std::nullopt;
}

/// Locals-to-interval map flowing through one thread body. Meets counts
/// re-meets at a node: past the widening threshold, any bound still moving
/// is pushed to infinity, giving the infinite-height domain a finite
/// effective chain (Dataflow.h leaves termination to the analysis).
struct IntervalDomain {
  std::map<std::string, Interval> Locals;
  uint32_t Meets = 0;
};

class IntervalAnalysis {
public:
  using Domain = IntervalDomain;

  IntervalAnalysis(const std::map<std::string, Interval> &SharedIv,
                   std::set<std::string> LocalNames)
      : SharedIv(SharedIv), LocalNames(std::move(LocalNames)) {}

  Domain boundary() const { return Domain{}; }

  bool meet(Domain &Out, const Domain &In) const {
    ++Out.Meets;
    bool Widen = Out.Meets > ValueRangeAnalysis::WidenThreshold;
    bool Changed = false;
    for (const auto &[Name, Iv] : In.Locals) {
      auto [It, Fresh] = Out.Locals.try_emplace(Name, Iv);
      if (Fresh) {
        Changed = true;
        continue;
      }
      Interval Old = It->second;
      if (It->second.joinWith(Iv)) {
        if (Widen)
          It->second.widenAgainst(Old);
        Changed = true;
      }
    }
    return Changed;
  }

  void transfer(const CfgNode &N, Domain &D) const {
    if (!N.S || N.K == CfgNode::Kind::Acquire ||
        N.K == CfgNode::Kind::Release)
      return;
    const Stmt &S = *N.S;
    if (S.K == Stmt::Kind::LocalDecl) {
      D.Locals[S.Name] =
          S.Value ? eval(*S.Value, D) : Interval::constant(0);
    } else if (S.K == Stmt::Kind::Assign && LocalNames.count(S.Name)) {
      D.Locals[S.Name] = eval(*S.Value, D);
    }
  }

  Interval eval(const Expr &E, const Domain &D) const;

  const std::set<std::string> &locals() const { return LocalNames; }

private:
  const std::map<std::string, Interval> &SharedIv;
  std::set<std::string> LocalNames;
};

Interval IntervalAnalysis::eval(const Expr &E, const Domain &D) const {
  switch (E.K) {
  case Expr::Kind::IntLit:
    return Interval::constant(E.IntValue);
  case Expr::Kind::Name: {
    if (LocalNames.count(E.Name)) {
      auto It = D.Locals.find(E.Name);
      // Declared on no path reaching here: the compiler rejects reads
      // before the declaration, so top is merely conservative.
      return It == D.Locals.end() ? Interval::top() : It->second;
    }
    auto It = SharedIv.find(E.Name);
    return It == SharedIv.end() ? Interval::top() : It->second;
  }
  case Expr::Kind::Index: {
    // Base-name granularity: any cell, any interleaving.
    auto It = SharedIv.find(E.Name);
    return It == SharedIv.end() ? Interval::top() : It->second;
  }
  case Expr::Kind::Unary:
    return evalUnary(E.UOp, eval(*E.Lhs, D));
  case Expr::Kind::Binary:
    return evalBinary(E.Op, eval(*E.Lhs, D), eval(*E.Rhs, D));
  }
  return Interval::top();
}

} // namespace

//===----------------------------------------------------------------------===//
// ValueRangeAnalysis
//===----------------------------------------------------------------------===//

void ValueRangeAnalysis::collectLocals(const ThreadDecl &T,
                                       std::set<std::string> &Locals) {
  forEachStmt(T.Body, [&](const Stmt &S) {
    if (S.K == Stmt::Kind::LocalDecl)
      Locals.insert(S.Name);
  });
}

ValueRangeAnalysis::ValueRangeAnalysis(const Program &P) : Prog(P) {
  // Seed every shared base name with its declared initializer (the
  // compiler fills all array cells with it, runtime/Compile.cpp).
  for (const SharedDecl &D : P.Shareds)
    SharedIv[D.Name] = Interval::constant(D.Init);

  std::vector<Cfg> Cfgs;
  std::vector<std::set<std::string>> Locals(P.Threads.size());
  Cfgs.reserve(P.Threads.size());
  for (uint32_t T = 0; T < P.Threads.size(); ++T) {
    Cfgs.emplace_back(P.Threads[T]);
    collectLocals(P.Threads[T], Locals[T]);
  }

  // Global rounds: shared intervals only grow, and past the widening
  // round any still-moving bound is pushed to infinity, so the loop
  // reaches a fixpoint well inside MaxGlobalRounds.
  for (uint32_t Round = 0; Round < MaxGlobalRounds; ++Round) {
    std::map<std::string, Interval> Next = SharedIv;
    for (uint32_t T = 0; T < P.Threads.size(); ++T) {
      IntervalAnalysis A(SharedIv, Locals[T]);
      DataflowResult<IntervalAnalysis> R = solveDataflow(Cfgs[T], A);
      const Cfg &G = Cfgs[T];
      for (uint32_t Id = 0; Id < G.size(); ++Id) {
        const CfgNode &N = G.node(Id);
        if (!G.reachable(Id) || !N.S || N.K != CfgNode::Kind::Stmt)
          continue;
        const Stmt &S = *N.S;
        bool SharedWrite =
            (S.K == Stmt::Kind::Assign && !Locals[T].count(S.Name)) ||
            S.K == Stmt::Kind::ArrayAssign;
        if (!SharedWrite)
          continue;
        auto It = Next.find(S.Name);
        if (It == Next.end())
          continue; // undeclared: compile error anyway
        It->second.joinWith(A.eval(*S.Value, R.In[Id]));
      }
    }
    bool Changed = false;
    for (auto &[Name, Iv] : Next) {
      Interval &Cur = SharedIv[Name];
      if (Iv != Cur) {
        if (Round >= MaxGlobalRounds / 2)
          Iv.widenAgainst(Cur);
        Cur = Iv;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  // Final flow-sensitive pass per thread: classify every branch-emitting
  // site (runtime/Compile.cpp's emission rules, replicated here) as
  // statically determined or not, keyed by the line the trace will carry.
  BranchSiteByLine.resize(P.Threads.size());
  for (uint32_t T = 0; T < P.Threads.size(); ++T) {
    IntervalAnalysis A(SharedIv, Locals[T]);
    const Cfg &G = Cfgs[T];
    DataflowResult<IntervalAnalysis> R = solveDataflow(Cfgs[T], A);
    auto RegisterSite = [&](uint32_t Line, bool Constant) {
      if (Line == 0)
        return;
      SiteInfo &Info = BranchSiteByLine[T][Line];
      ++Info.Sites;
      ++NumBranchSites;
      if (Constant) {
        ++Info.Constant;
        ++NumConstantSites;
      }
    };
    for (uint32_t Id = 0; Id < G.size(); ++Id) {
      const CfgNode &N = G.node(Id);
      if (!G.reachable(Id) || !N.S)
        continue; // unreached nodes never emit branch events
      const Stmt &S = *N.S;
      const IntervalDomain &D = R.In[Id];
      // Non-constant array *reads* anywhere in the node's own expressions
      // emit a branch at the Index expression's line.
      forEachOwnExprNode(S, [&](const Expr &E) {
        if (E.K != Expr::Kind::Index || compilerConstantOf(*E.Lhs))
          return;
        RegisterSite(E.Line, A.eval(*E.Lhs, D).isConstant());
      });
      // `if`/`while` conditions emit a branch at the statement line.
      if (N.K == CfgNode::Kind::Branch && S.Cond) {
        Interval C = A.eval(*S.Cond, D);
        RegisterSite(N.Line, C.excludesZero() || C.isZero());
      }
      if (N.K != CfgNode::Kind::Stmt)
        continue;
      // Non-constant array *writes* emit a branch at the statement line.
      if (S.K == Stmt::Kind::ArrayAssign && S.Index &&
          !compilerConstantOf(*S.Index))
        RegisterSite(S.Line, A.eval(*S.Index, D).isConstant());
      // `assert` emits a branch at the statement line.
      if (S.K == Stmt::Kind::Assert && S.Value) {
        Interval V = A.eval(*S.Value, D);
        RegisterSite(S.Line, V.excludesZero() || V.isZero());
      }
    }
  }
}

Interval ValueRangeAnalysis::sharedRange(const std::string &Var) const {
  auto It = SharedIv.find(Var);
  return It == SharedIv.end() ? Interval::top() : It->second;
}

bool ValueRangeAnalysis::sharedSingleValued(const std::string &Var) const {
  return sharedRange(Var).isConstant();
}

bool ValueRangeAnalysis::branchConstantAt(uint32_t Thread,
                                          uint32_t Line) const {
  if (Thread >= BranchSiteByLine.size() || Line == 0)
    return false;
  const auto &ByLine = BranchSiteByLine[Thread];
  auto It = ByLine.find(Line);
  if (It == ByLine.end())
    return false; // line unknown: a site we failed to model — refuse
  return It->second.Sites > 0 && It->second.Sites == It->second.Constant;
}
