//===- analysis/Lint.cpp - Static diagnostics over MiniRV programs ----------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "analysis/AstWalk.h"
#include "analysis/Cfg.h"
#include "analysis/StaticLockset.h"
#include "analysis/ThreadEscape.h"
#include "support/BuildInfo.h"
#include "support/Stats.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <tuple>

using namespace rvp;

const char *rvp::diagKindName(DiagKind K) {
  switch (K) {
  case DiagKind::NeverShared:
    return "never-shared";
  case DiagKind::UnlockedAccess:
    return "unlocked-access";
  case DiagKind::UnreleasedLock:
    return "unreleased-lock";
  case DiagKind::ReentrantAcquire:
    return "reentrant-acquire";
  case DiagKind::UnreachableCode:
    return "unreachable-code";
  case DiagKind::ReadNeverWritten:
    return "read-never-written";
  case DiagKind::ReleaseUnheld:
    return "release-unheld";
  }
  return "unknown";
}

namespace {

struct LintContext {
  const Program &P;
  const ThreadEscapeAnalysis &TE;
  std::vector<Diagnostic> &Diags;
  /// (line, col, var) triples already reported as unlocked accesses.
  std::set<std::tuple<uint32_t, uint32_t, std::string>> SeenUnlocked;

  void emit(DiagKind K, uint32_t Line, uint32_t Col, std::string Message) {
    Diags.push_back({K, Line, Col, std::move(Message)});
  }

  void checkThread(const ThreadDecl &TD);
  void checkAccess(const std::string &Name, bool IsWrite, uint32_t Line,
                   uint32_t Col, const StaticLocksetAnalysis &LS,
                   uint32_t Node);
};

void LintContext::checkAccess(const std::string &Name, bool IsWrite,
                              uint32_t Line, uint32_t Col,
                              const StaticLocksetAnalysis &LS,
                              uint32_t Node) {
  const SharedDecl *D = P.findShared(Name);
  if (!D || D->Volatile)
    return;
  if (!TE.isThreadShared(Name))
    return; // thread-local in time: no race possible, lockset irrelevant
  if (!LS.mustHeldNames(Node).empty())
    return;
  if (!SeenUnlocked.insert({Line, Col, Name}).second)
    return;
  emit(DiagKind::UnlockedAccess, Line, Col,
       std::string(IsWrite ? "write to" : "read of") + " shared variable '" +
           Name + "' holds no lock on some path");
}

void LintContext::checkThread(const ThreadDecl &TD) {
  Cfg G(TD);
  StaticLocksetAnalysis LS(P, G);

  // Unreachable code: one diagnostic per dead region, anchored at the
  // region's first statement in source order. Dead loops form cycles with
  // no predecessor-free node, so "first uncovered in creation order, then
  // flood-fill its successors" is the robust way to pick region heads.
  std::set<uint32_t> Covered;
  for (uint32_t Id : G.unreachableNodes()) {
    if (Covered.count(Id))
      continue;
    const CfgNode &N = G.node(Id);
    emit(DiagKind::UnreachableCode, N.Line, N.Col,
         "statement in thread '" + TD.Name + "' is unreachable");
    std::vector<uint32_t> Stack{Id};
    Covered.insert(Id);
    while (!Stack.empty()) {
      uint32_t Cur = Stack.back();
      Stack.pop_back();
      for (uint32_t To : G.node(Cur).Succs)
        if (!G.reachable(To) && Covered.insert(To).second)
          Stack.push_back(To);
    }
  }

  for (uint32_t Id = 0; Id < G.size(); ++Id) {
    const CfgNode &N = G.node(Id);
    if (!G.reachable(Id) || !N.S)
      continue;
    const Stmt &S = *N.S;

    if (N.K == CfgNode::Kind::Acquire) {
      int LI = LS.lockIndex(S.Name);
      if (LI >= 0 && LS.mustAt(Id)[LI] > 0)
        emit(DiagKind::ReentrantAcquire, N.Line, N.Col,
             "lock '" + S.Name + "' acquired while already held");
    }
    if (N.K == CfgNode::Kind::Release) {
      int LI = LS.lockIndex(S.Name);
      if (LI >= 0 && LS.mayAt(Id)[LI] == 0)
        emit(DiagKind::ReleaseUnheld, N.Line, N.Col,
             "unlock of '" + S.Name +
                 "' which is never held here (runtime error)");
    }

    // Shared accesses at this node: the write target plus every variable
    // mentioned by the node's own expressions.
    if (S.K == Stmt::Kind::Assign || S.K == Stmt::Kind::ArrayAssign)
      checkAccess(S.Name, /*IsWrite=*/true, S.Line, S.Col, LS, Id);
    forEachOwnExprNode(S, [&](const Expr &E) {
      if (E.K == Expr::Kind::Name || E.K == Expr::Kind::Index)
        checkAccess(E.Name, /*IsWrite=*/false, E.Line, E.Col, LS, Id);
    });
  }

  // Locks still (possibly) held when the thread exits.
  if (LS.reached(G.exit()))
    for (size_t I = 0; I < LS.numLocks(); ++I)
      if (LS.mayAt(G.exit())[I] > 0)
        emit(DiagKind::UnreleasedLock, TD.Line, TD.Col,
             "lock '" + LS.lockName(I) + "' may still be held when thread '" +
                 TD.Name + "' exits");
}

} // namespace

LintResult rvp::runLint(const Program &P, bool WithRaces) {
  LintResult R;
  ThreadEscapeAnalysis TE(P);
  R.ThreadLocalDecls = TE.threadLocalDeclCount();
  if (WithRaces)
    R.Races = runRaceCheck(P).Warnings;

  LintContext Ctx{P, TE, R.Diags, {}};

  for (const SharedDecl &D : P.Shareds) {
    if (!TE.isThreadShared(D.Name))
      Ctx.emit(DiagKind::NeverShared, D.Line, D.Col,
               "variable '" + D.Name +
                   "' is declared shared but can never be accessed by two "
                   "threads concurrently");
    if (TE.isRead(D.Name) && !TE.isWritten(D.Name))
      Ctx.emit(DiagKind::ReadNeverWritten, D.Line, D.Col,
               "shared variable '" + D.Name +
                   "' is read but never written (always its initial value)");
  }

  for (const ThreadDecl &TD : P.Threads)
    Ctx.checkThread(TD);

  std::sort(R.Diags.begin(), R.Diags.end(),
            [](const Diagnostic &A, const Diagnostic &B) {
              return std::tie(A.Line, A.Col, A.K, A.Message) <
                     std::tie(B.Line, B.Col, B.K, B.Message);
            });
  return R;
}

namespace {

/// "write in thread 't1' (line 8)" — one side of a race warning.
std::string raceSideText(const StaticAccessSite &S) {
  return std::string(S.Write ? "write" : "read") + " in thread '" +
         S.ThreadName + "' (line " + std::to_string(S.Line) + ")";
}

std::string raceMessage(const StaticRaceWarning &W) {
  std::string Msg = "possible data race on '" + W.Var + "': " +
                    raceSideText(W.A) + " vs " + raceSideText(W.B);
  if (W.A.Locks == 0 && W.B.Locks == 0)
    Msg += ", no locks held";
  return Msg;
}

} // namespace

void rvp::renderLintText(const LintResult &R, const std::string &File,
                         std::ostream &OS) {
  for (const Diagnostic &D : R.Diags)
    OS << File << ":" << D.Line << ":" << D.Col << ": warning: " << D.Message
       << " [" << diagKindName(D.K) << "]\n";
  for (const StaticRaceWarning &W : R.Races)
    OS << File << ":" << W.A.Line << ":" << W.A.Col
       << ": warning: " << raceMessage(W) << " [static-race]\n";
  size_t Total = R.Diags.size() + R.Races.size();
  if (Total == 0)
    OS << File << ": no issues found\n";
  else
    OS << File << ": " << Total
       << (Total == 1 ? " warning\n" : " warnings\n");
}

namespace {

void renderRaceSiteJson(const StaticAccessSite &S, std::ostream &OS) {
  OS << "{\"thread\": \"" << jsonEscape(S.ThreadName) << "\", "
     << "\"line\": " << S.Line << ", "
     << "\"col\": " << S.Col << ", "
     << "\"write\": " << (S.Write ? "true" : "false") << ", "
     << "\"locked\": " << (S.Locks != 0 ? "true" : "false") << "}";
}

} // namespace

void rvp::renderLintJson(const LintResult &R, const std::string &File,
                         std::ostream &OS) {
  OS << "{\n";
  // Same run-metadata header as the stats/bench emitters so downstream
  // tooling can treat every JSON artifact uniformly.
  OS << "  \"schema_version\": " << StatsSchemaVersion << ",\n";
  OS << "  \"git_sha\": \"" << jsonEscape(gitSha()) << "\",\n";
  OS << "  \"timestamp\": \"" << jsonEscape(isoTimestampUtc()) << "\",\n";
  OS << "  \"file\": \"" << jsonEscape(File) << "\",\n";
  OS << "  \"thread_local_decls\": " << R.ThreadLocalDecls << ",\n";
  OS << "  \"diagnostics\": [";
  for (size_t I = 0; I < R.Diags.size(); ++I) {
    const Diagnostic &D = R.Diags[I];
    OS << (I ? ",\n    {" : "\n    {");
    OS << "\"kind\": \"" << diagKindName(D.K) << "\", ";
    OS << "\"line\": " << D.Line << ", ";
    OS << "\"col\": " << D.Col << ", ";
    OS << "\"message\": \"" << jsonEscape(D.Message) << "\"}";
  }
  OS << (R.Diags.empty() ? "],\n" : "\n  ],\n");
  OS << "  \"races\": [";
  for (size_t I = 0; I < R.Races.size(); ++I) {
    const StaticRaceWarning &W = R.Races[I];
    OS << (I ? ",\n    {" : "\n    {");
    OS << "\"var\": \"" << jsonEscape(W.Var) << "\", ";
    OS << "\"rank\": " << W.Rank << ", ";
    OS << "\"a\": ";
    renderRaceSiteJson(W.A, OS);
    OS << ", \"b\": ";
    renderRaceSiteJson(W.B, OS);
    OS << "}";
  }
  OS << (R.Races.empty() ? "]\n" : "\n  ]\n");
  OS << "}\n";
}
