//===- analysis/RaceCheck.h - Eraser-style static race check -----*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Purely static race candidates, Eraser-style with the sound refinements
/// this directory already computes: two accesses to the same shared base
/// name from different threads, at least one a write, are a warning unless
///
///   * the variable is never truly shared in time (ThreadEscape — its
///     accessor pairs cannot overlap),
///   * the static must-happen-before relation orders the two sites in
///     every execution (StaticMhb — fork/join dominance), or
///   * the sites share a must-held lock (StaticLockset's must analysis).
///
/// Each discard is an *under*-approximation of the corresponding dynamic
/// guarantee, so the check is complete against the dynamic tier: every
/// race the predictive detectors can report has disjoint runtime locksets
/// (hence disjoint must-locksets), concurrent threads, and no sound MHB —
/// its site pair survives every filter and appears as a warning. The
/// cross-validation test (tests/StaticRaceTest.cpp) holds the pipeline to
/// that contract on the whole catalog.
///
/// Warnings are ranked: write/write pairs over write/read, lock-free pairs
/// over pairs where some lock is held — the same triage order Eraser's
/// users applied by hand. Surfacing is `rvlint --races` (analysis/Lint.h).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_RACECHECK_H
#define RVP_ANALYSIS_RACECHECK_H

#include "lang/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rvp {

/// One side of a static race candidate.
struct StaticAccessSite {
  uint32_t Thread = 0;    ///< Program::Threads index
  std::string ThreadName; ///< resolved for rendering
  uint32_t Line = 0;
  uint32_t Col = 0;
  bool Write = false;
  uint64_t Locks = 0; ///< must-held lock bitmask at the site
};

/// A ranked static race warning on shared base name Var. Site A is the
/// write (or the lower-numbered site when the pair is symmetric).
struct StaticRaceWarning {
  std::string Var;
  StaticAccessSite A, B;
  /// 1..3: +1 when both sites write, +1 when neither holds any lock.
  int Rank = 1;
};

struct RaceCheckResult {
  /// Ranked descending, then by variable and site position.
  std::vector<StaticRaceWarning> Warnings;
  uint64_t PairsConsidered = 0;
  uint64_t PairsMhbOrdered = 0;
  uint64_t PairsLockProtected = 0;
};

/// Runs the static race check over \p P.
RaceCheckResult runRaceCheck(const Program &P);

} // namespace rvp

#endif // RVP_ANALYSIS_RACECHECK_H
