//===- analysis/StaticMhb.cpp - Static must-happen-before -------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticMhb.h"

#include "analysis/AstWalk.h"
#include "analysis/Cfg.h"

#include <deque>
#include <string>

using namespace rvp;

namespace {

/// Nodes reachable from \p From (inclusive) following Succs.
std::vector<bool> reachFrom(const Cfg &G, uint32_t From) {
  std::vector<bool> Seen(G.size(), false);
  std::deque<uint32_t> Work{From};
  Seen[From] = true;
  while (!Work.empty()) {
    uint32_t Id = Work.front();
    Work.pop_front();
    for (uint32_t To : G.node(Id).Succs)
      if (!Seen[To]) {
        Seen[To] = true;
        Work.push_back(To);
      }
  }
  return Seen;
}

/// Nodes reachable from Entry without passing through \p Avoid. A node
/// outside this set (but reachable in the full graph) is dominated by
/// \p Avoid: every execution reaching it already executed \p Avoid.
std::vector<bool> reachAvoiding(const Cfg &G, uint32_t Avoid) {
  std::vector<bool> Seen(G.size(), false);
  if (G.entry() == Avoid)
    return Seen;
  std::deque<uint32_t> Work{G.entry()};
  Seen[G.entry()] = true;
  while (!Work.empty()) {
    uint32_t Id = Work.front();
    Work.pop_front();
    for (uint32_t To : G.node(Id).Succs)
      if (To != Avoid && !Seen[To]) {
        Seen[To] = true;
        Work.push_back(To);
      }
  }
  return Seen;
}

} // namespace

StaticMhbAnalysis::StaticMhbAnalysis(const Program &P)
    : NumThreads(P.Threads.size()) {
  std::map<std::string, uint32_t> ThreadIdx;
  for (uint32_t T = 0; T < P.Threads.size(); ++T)
    ThreadIdx[P.Threads[T].Name] = T;

  std::vector<Cfg> Cfgs;
  Cfgs.reserve(NumThreads);
  for (uint32_t T = 0; T < NumThreads; ++T)
    Cfgs.emplace_back(P.Threads[T]);

  // Line -> node registry, spawn-site and join-site collection. Only
  // reachable nodes matter: unreached code emits no events and executes
  // no spawn/join.
  LineNodes.resize(NumThreads);
  SpawnOf.assign(NumThreads, SpawnSite{});
  std::vector<uint32_t> SpawnSiteCount(NumThreads, 0);
  std::vector<uint32_t> SpawnSiteNode(NumThreads, 0);
  JoinDominates.resize(NumThreads);
  for (uint32_t T = 0; T < NumThreads; ++T)
    JoinDominates[T].resize(NumThreads);

  for (uint32_t T = 0; T < NumThreads; ++T) {
    const Cfg &G = Cfgs[T];
    for (uint32_t Id = 0; Id < G.size(); ++Id) {
      const CfgNode &N = G.node(Id);
      if (!G.reachable(Id) || !N.S)
        continue;
      auto Register = [&](uint32_t Line) {
        if (Line != 0)
          LineNodes[T][Line].push_back(Id);
      };
      Register(N.Line);
      forEachOwnExprNode(*N.S, [&](const Expr &E) { Register(E.Line); });

      if (N.S->K == Stmt::Kind::Spawn) {
        auto It = ThreadIdx.find(N.S->Name);
        if (It != ThreadIdx.end() && It->second != T) {
          uint32_t Child = It->second;
          if (++SpawnSiteCount[Child] == 1) {
            SpawnOf[Child].Owner = T;
            SpawnSiteNode[Child] = Id;
          }
        }
      } else if (N.S->K == Stmt::Kind::Join) {
        auto It = ThreadIdx.find(N.S->Name);
        if (It != ThreadIdx.end() && It->second != T) {
          uint32_t Child = It->second;
          // Any single join site is usable: passing it means the child
          // finished, whatever other join statements exist.
          std::vector<bool> Avoid = reachAvoiding(G, Id);
          std::vector<bool> &Dom = JoinDominates[T][Child];
          if (Dom.empty())
            Dom.assign(G.size(), false);
          for (uint32_t Y = 0; Y < G.size(); ++Y)
            if (Y != Id && G.reachable(Y) && !Avoid[Y])
              Dom[Y] = true;
        }
      }
    }
  }
  for (uint32_t Child = 0; Child < NumThreads; ++Child) {
    // A duplicated spawn statement leaves "which site forked the thread"
    // unknown; only a unique site anchors begin(Child) in program order.
    if (SpawnSiteCount[Child] != 1)
      continue;
    SpawnOf[Child].Unique = true;
    SpawnOf[Child].ReachFromSite =
        reachFrom(Cfgs[SpawnOf[Child].Owner], SpawnSiteNode[Child]);
  }

  // Milestone graph + Floyd-Warshall closure.
  size_t M = 2 * NumThreads;
  Reach.assign(M * M, false);
  auto Edge = [&](uint32_t From, uint32_t To) {
    if (!Reach[From * M + To]) {
      Reach[From * M + To] = true;
      ++NumEdges;
    }
  };
  for (uint32_t T = 0; T < NumThreads; ++T)
    Edge(beginOf(T), endOf(T));
  for (uint32_t Child = 0; Child < NumThreads; ++Child) {
    if (!SpawnOf[Child].Unique)
      continue;
    uint32_t C = SpawnOf[Child].Owner;
    Edge(beginOf(C), beginOf(Child));
    // end(A) -> begin(Child) when a join of A dominates the spawn site.
    for (uint32_t A = 0; A < NumThreads; ++A) {
      const std::vector<bool> &Dom = JoinDominates[C][A];
      if (!Dom.empty() && Dom[SpawnSiteNode[Child]])
        Edge(endOf(A), beginOf(Child));
    }
  }
  for (uint32_t C = 0; C < NumThreads; ++C)
    for (uint32_t A = 0; A < NumThreads; ++A) {
      const std::vector<bool> &Dom = JoinDominates[C][A];
      if (!Dom.empty() && Dom[Cfgs[C].exit()])
        Edge(endOf(A), endOf(C)); // C cannot finish before A did
    }
  for (size_t K = 0; K < M; ++K)
    for (size_t I = 0; I < M; ++I) {
      if (!Reach[I * M + K])
        continue;
      for (size_t J = 0; J < M; ++J)
        if (Reach[K * M + J])
          Reach[I * M + J] = true;
    }
}

bool StaticMhbAnalysis::threadOrdered(uint32_t A, uint32_t B) const {
  if (A >= NumThreads || B >= NumThreads || A == B)
    return false;
  return Reach[endOf(A) * 2 * NumThreads + beginOf(B)];
}

bool StaticMhbAnalysis::orderedBefore(uint32_t Ta, uint32_t La, uint32_t Tb,
                                      uint32_t Lb) const {
  if (Ta >= NumThreads || Tb >= NumThreads || Ta == Tb || La == 0 ||
      Lb == 0)
    return false;
  auto ItA = LineNodes[Ta].find(La);
  auto ItB = LineNodes[Tb].find(Lb);
  if (ItA == LineNodes[Ta].end() || ItB == LineNodes[Tb].end())
    return false; // line not modelled: no information

  // Milestones every La-event precedes.
  std::vector<uint32_t> Upper{endOf(Ta)};
  for (uint32_t D = 0; D < NumThreads; ++D) {
    if (!SpawnOf[D].Unique || SpawnOf[D].Owner != Ta)
      continue;
    bool AllBefore = true;
    for (uint32_t Node : ItA->second)
      if (SpawnOf[D].ReachFromSite[Node]) {
        AllBefore = false;
        break;
      }
    if (AllBefore)
      Upper.push_back(beginOf(D));
  }
  // Milestones every Lb-event follows.
  std::vector<uint32_t> Lower{beginOf(Tb)};
  for (uint32_t D = 0; D < NumThreads; ++D) {
    const std::vector<bool> &Dom = JoinDominates[Tb][D];
    if (Dom.empty())
      continue;
    bool AllAfter = true;
    for (uint32_t Node : ItB->second)
      if (!Dom[Node]) {
        AllAfter = false;
        break;
      }
    if (AllAfter)
      Lower.push_back(endOf(D));
  }

  size_t M = 2 * NumThreads;
  for (uint32_t M1 : Upper)
    for (uint32_t M2 : Lower)
      if (M1 == M2 || Reach[M1 * M + M2])
        return true;
  return false;
}
