//===- analysis/Lint.h - Static diagnostics over MiniRV programs -*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic layer behind the `rvlint` tool. Each check composes the
/// CFG, thread-escape, and static lockset analyses into a program-level
/// report:
///
///   never-shared        shared declaration no two threads can ever access
///                       concurrently (fork/join structure proves it)
///   unlocked-access     access to a genuinely shared, non-volatile
///                       variable with an empty must-lockset
///   unreleased-lock     some path through a thread leaves a lock held at
///                       thread exit
///   reentrant-acquire   lock acquired while already must-held (silent at
///                       runtime, usually a refactoring leftover)
///   unreachable-code    statement with no path from thread entry
///                       (constant-folded branches included)
///   read-never-written  shared variable read somewhere but never assigned
///   release-unheld      unlock of a lock that is definitely not held — a
///                       guaranteed runtime error
///   static-race         (with races enabled) ranked Eraser-style race
///                       candidate from analysis/RaceCheck.h: concurrent
///                       accesses, a write among them, disjoint
///                       must-locksets, no static must-happen-before
///
/// Diagnostics carry source line/column and are sorted deterministically
/// (line, column, kind) so golden tests are stable across platforms; race
/// warnings keep their rank order (most urgent first).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_LINT_H
#define RVP_ANALYSIS_LINT_H

#include "analysis/RaceCheck.h"
#include "lang/Ast.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rvp {

enum class DiagKind : uint8_t {
  NeverShared,
  UnlockedAccess,
  UnreleasedLock,
  ReentrantAcquire,
  UnreachableCode,
  ReadNeverWritten,
  ReleaseUnheld,
};

/// Stable kebab-case identifier, used in both text and JSON output.
const char *diagKindName(DiagKind K);

struct Diagnostic {
  DiagKind K;
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string Message;
};

struct LintResult {
  std::vector<Diagnostic> Diags; ///< sorted by (Line, Col, kind, message)
  /// Static race warnings (rvlint --races), ranked most urgent first;
  /// empty unless runLint ran with WithRaces.
  std::vector<StaticRaceWarning> Races;
  /// Shared declarations proven thread-local in time (never-shared count
  /// plus supporting metric for --stats consumers).
  uint64_t ThreadLocalDecls = 0;
};

/// Runs every check over \p P; \p WithRaces adds the static race pass.
LintResult runLint(const Program &P, bool WithRaces = false);

/// `<file>:<line>:<col>: warning: <message> [<kind>]`, one per line;
/// race warnings follow the diagnostics and share the trailing count.
void renderLintText(const LintResult &R, const std::string &File,
                    std::ostream &OS);

/// Stable JSON: {"schema_version": ..., "git_sha": ..., "timestamp": ...,
/// "file": ..., "thread_local_decls": N, "diagnostics": [...],
/// "races": [...]} — the same run-metadata header as the stats/bench
/// emitters (support/BuildInfo.h).
void renderLintJson(const LintResult &R, const std::string &File,
                    std::ostream &OS);

} // namespace rvp

#endif // RVP_ANALYSIS_LINT_H
