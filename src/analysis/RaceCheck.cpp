//===- analysis/RaceCheck.cpp - Eraser-style static race check --------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/RaceCheck.h"

#include "analysis/AstWalk.h"
#include "analysis/Cfg.h"
#include "analysis/StaticLockset.h"
#include "analysis/StaticMhb.h"
#include "analysis/ThreadEscape.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

using namespace rvp;

namespace {

struct Site {
  uint32_t Thread;
  uint32_t Line, Col;
  bool Write;
  uint64_t Locks;
};

/// Orders the two sites of a warning: writes first, then position — the
/// rendering anchor is deterministic regardless of discovery order.
bool siteBefore(const StaticAccessSite &A, const StaticAccessSite &B) {
  return std::make_tuple(!A.Write, A.Thread, A.Line, A.Col) <
         std::make_tuple(!B.Write, B.Thread, B.Line, B.Col);
}

} // namespace

RaceCheckResult rvp::runRaceCheck(const Program &P) {
  RaceCheckResult Result;
  ThreadEscapeAnalysis Escape(P);
  StaticMhbAnalysis Mhb(P);

  // Collect every shared access site with its must-held lock mask. Writes
  // are attributed to the statement line, reads to the expression line —
  // the same attribution the compiler stamps on trace events, so warnings
  // and dynamic reports line up.
  std::set<std::string> Locals;
  std::map<std::string, std::vector<Site>> Sites;
  for (uint32_t T = 0; T < P.Threads.size(); ++T) {
    Locals.clear();
    forEachStmt(P.Threads[T].Body, [&](const Stmt &S) {
      if (S.K == Stmt::Kind::LocalDecl)
        Locals.insert(S.Name);
    });
    Cfg G(P.Threads[T]);
    StaticLocksetAnalysis LS(P, G);
    for (uint32_t Id = 0; Id < G.size(); ++Id) {
      const CfgNode &N = G.node(Id);
      if (!G.reachable(Id) || !N.S)
        continue; // unreached nodes never access anything
      uint64_t Mask = 0;
      const std::vector<uint32_t> &Counts = LS.mustAt(Id);
      for (size_t L = 0; L < Counts.size() && L < 64; ++L)
        if (Counts[L] > 0)
          Mask |= uint64_t(1) << L;
      auto Add = [&](const std::string &Var, uint32_t Line, uint32_t Col,
                     bool Write) {
        const SharedDecl *D = P.findShared(Var);
        if (!D || D->Volatile)
          return; // volatile accesses never conflict (trace/Event.h)
        Sites[Var].push_back(Site{T, Line, Col, Write, Mask});
      };
      if (N.K == CfgNode::Kind::Stmt &&
          (N.S->K == Stmt::Kind::Assign ||
           N.S->K == Stmt::Kind::ArrayAssign) &&
          !Locals.count(N.S->Name))
        Add(N.S->Name, N.Line, N.Col, /*Write=*/true);
      forEachOwnExprNode(*N.S, [&](const Expr &E) {
        if (E.K == Expr::Kind::Name && !Locals.count(E.Name))
          Add(E.Name, E.Line, E.Col, /*Write=*/false);
        else if (E.K == Expr::Kind::Index)
          Add(E.Name, E.Line, E.Col, /*Write=*/false);
      });
    }
  }

  std::set<std::tuple<std::string, uint32_t, uint32_t, uint32_t, uint32_t>>
      Seen;
  for (const auto &[Var, List] : Sites) {
    // Never truly shared in time: no accessor pair can overlap.
    if (!Escape.isThreadShared(Var))
      continue;
    for (size_t I = 0; I < List.size(); ++I)
      for (size_t J = I + 1; J < List.size(); ++J) {
        const Site &SA = List[I], &SB = List[J];
        if (SA.Thread == SB.Thread || (!SA.Write && !SB.Write))
          continue;
        ++Result.PairsConsidered;
        if (Mhb.orderedBefore(SA.Thread, SA.Line, SB.Thread, SB.Line) ||
            Mhb.orderedBefore(SB.Thread, SB.Line, SA.Thread, SA.Line)) {
          ++Result.PairsMhbOrdered;
          continue;
        }
        if ((SA.Locks & SB.Locks) != 0) {
          ++Result.PairsLockProtected;
          continue;
        }
        StaticRaceWarning W;
        W.Var = Var;
        W.A = StaticAccessSite{SA.Thread, P.Threads[SA.Thread].Name,
                               SA.Line,   SA.Col,
                               SA.Write,  SA.Locks};
        W.B = StaticAccessSite{SB.Thread, P.Threads[SB.Thread].Name,
                               SB.Line,   SB.Col,
                               SB.Write,  SB.Locks};
        if (siteBefore(W.B, W.A))
          std::swap(W.A, W.B);
        W.Rank = 1 + (W.A.Write && W.B.Write) +
                 (W.A.Locks == 0 && W.B.Locks == 0);
        if (!Seen
                 .emplace(W.Var, W.A.Thread, W.A.Line, W.B.Thread, W.B.Line)
                 .second)
          continue; // same line pair seen (multi-site lines collapse)
        Result.Warnings.push_back(std::move(W));
      }
  }

  std::sort(Result.Warnings.begin(), Result.Warnings.end(),
            [](const StaticRaceWarning &X, const StaticRaceWarning &Y) {
              return std::make_tuple(-X.Rank, X.Var, X.A.Line, X.A.Col,
                                     X.B.Line, X.B.Col) <
                     std::make_tuple(-Y.Rank, Y.Var, Y.A.Line, Y.A.Col,
                                     Y.B.Line, Y.B.Col);
            });
  return Result;
}
