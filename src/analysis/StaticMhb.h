//===- analysis/StaticMhb.h - Static must-happen-before ----------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sound static must-happen-before relation over MiniRV programs, built
/// from fork/join structure and CFG dominance — including spawns and joins
/// issued by *non-main* threads and nested inside lock regions, which the
/// PR 3 interval analysis (main's top level only) cannot see.
///
/// The relation is carried by a tiny *milestone graph* with two nodes per
/// thread, begin(T) (its Begin event) and end(T) (its End event), and an
/// edge M1 -> M2 whenever the occurrence of M2 implies M1 already
/// occurred, in every execution:
///
///   begin(T) -> end(T)      a thread begins before it ends;
///   begin(C) -> begin(D)    C contains the unique spawn site of D;
///   end(A)   -> end(C)      a join of A dominates C's exit — C cannot
///                           finish without completing that join;
///   end(A)   -> begin(D)    a join of A dominates the unique spawn site
///                           of D in the same thread.
///
/// A statement pair (Ta, La) < (Tb, Lb) is then ordered when some
/// milestone M1 that every La-event precedes reaches (transitively) some
/// milestone M2 that every Lb-event follows:
///
///   a < end(Ta) always; a < begin(D) when Ta holds D's unique spawn site
///   and no node denoting La is reachable from it (the spawn's Fork event
///   fires at most once — re-spawns are runtime errors that emit nothing —
///   so every La occurrence precedes it);
///   begin(Tb) < b always; end(D) < b when some join(D) site dominates
///   every node denoting Lb (reaching b means the blocking join completed,
///   so D ended).
///
/// Everything is conservative in the "don't know = not ordered" direction:
/// duplicated spawn statements, lines absent from a thread's node map, or
/// sites only reachable through cycles all answer false. Soundness for the
/// pruner follows as in StaticPrune.h: the witnessing chain of
/// fork/begin/end/join events sits between the two accesses in the
/// recorded trace, so every window containing both also contains the
/// chain, and each technique's MHB closure orders the pair.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_STATICMHB_H
#define RVP_ANALYSIS_STATICMHB_H

#include "lang/Ast.h"

#include <cstdint>
#include <map>
#include <vector>

namespace rvp {

class StaticMhbAnalysis {
public:
  /// Builds the relation over \p P. The program must outlive the analysis.
  explicit StaticMhbAnalysis(const Program &P);

  /// Must every event of thread \p Ta at source line \p La happen before
  /// every event of thread \p Tb at line \p Lb? Unknown threads or lines
  /// answer false.
  bool orderedBefore(uint32_t Ta, uint32_t La, uint32_t Tb,
                     uint32_t Lb) const;

  /// Thread-level projection: must all of \p A finish before \p B begins?
  bool threadOrdered(uint32_t A, uint32_t B) const;

  /// Milestone-graph edges (stats/debug surface).
  uint64_t milestoneEdges() const { return NumEdges; }

private:
  uint32_t beginOf(uint32_t T) const { return 2 * T; }
  uint32_t endOf(uint32_t T) const { return 2 * T + 1; }

  size_t NumThreads = 0;
  uint64_t NumEdges = 0;
  /// Transitive closure over the 2*NumThreads milestones, row-major;
  /// Reach[M1 * 2N + M2] means M1's event precedes M2's in every run.
  std::vector<bool> Reach;
  /// Per thread: line -> ids of reachable CFG nodes that may emit an
  /// event attributed to that line (statement line + owned expressions).
  std::vector<std::map<uint32_t, std::vector<uint32_t>>> LineNodes;
  /// Per spawned thread: owner thread and the bitset of owner-CFG nodes
  /// reachable from its unique spawn site (empty when no unique site).
  struct SpawnSite {
    uint32_t Owner = 0;
    bool Unique = false;
    std::vector<bool> ReachFromSite; ///< includes the site itself
  };
  std::vector<SpawnSite> SpawnOf; ///< indexed by spawned thread
  /// [Owner][Child]: owner-CFG nodes dominated by some `join Child` site
  /// (every Entry path to the node passes the join). Empty = none.
  std::vector<std::vector<std::vector<bool>>> JoinDominates;
};

} // namespace rvp

#endif // RVP_ANALYSIS_STATICMHB_H
