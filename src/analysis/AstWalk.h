//===- analysis/AstWalk.h - Small AST traversal helpers ----------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Traversal helpers shared by the analyses: visiting every expression a
/// statement owns directly (without descending into nested statements, so
/// CFG-node-granular clients see exactly the code that executes at that
/// node), and pre-order statement walks over whole bodies.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_ASTWALK_H
#define RVP_ANALYSIS_ASTWALK_H

#include "lang/Ast.h"

namespace rvp {

/// Pre-order visit of \p E and every sub-expression.
template <typename Fn> void forEachExprNode(const Expr &E, Fn &&F) {
  F(E);
  if (E.Lhs)
    forEachExprNode(*E.Lhs, F);
  if (E.Rhs)
    forEachExprNode(*E.Rhs, F);
}

/// Visits every expression node evaluated *by S itself* — its condition,
/// index, and value operands — but nothing inside S's nested statements.
/// This matches CFG granularity: all these expressions execute at S's node.
template <typename Fn> void forEachOwnExprNode(const Stmt &S, Fn &&F) {
  if (S.Cond)
    forEachExprNode(*S.Cond, F);
  if (S.Index)
    forEachExprNode(*S.Index, F);
  if (S.Value)
    forEachExprNode(*S.Value, F);
}

/// Pre-order visit of every statement in \p Body, descending into nested
/// bodies.
template <typename Fn>
void forEachStmt(const std::vector<StmtPtr> &Body, Fn &&F) {
  for (const StmtPtr &S : Body) {
    F(*S);
    forEachStmt(S->Body, F);
    forEachStmt(S->ElseBody, F);
  }
}

} // namespace rvp

#endif // RVP_ANALYSIS_ASTWALK_H
