//===- analysis/ValueRange.h - Interval value-range dataflow -----*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program interval analysis over MiniRV: every local and shared
/// variable gets a sound over-approximation of the values it may hold in
/// *any* execution under *any* interleaving. Two cooperating fixpoints:
///
///  * a flow-insensitive **global** round computes one interval per shared
///    base name — the join of its declared initializer with every value any
///    thread may assign to it, program-wide. Because it joins over all
///    writes regardless of order, it is sound for arbitrary interleavings;
///    arrays collapse to base-name granularity (one interval for all
///    cells), matching the rest of the static tier.
///  * a flow-sensitive **per-thread** pass runs the interval transfer
///    through the shared solveDataflow() worklist, with widening to +/-inf
///    once a node has been re-met more than WidenThreshold times, so loops
///    terminate on the infinite-height domain. Shared reads evaluate to the
///    global interval; locals flow through assignments precisely.
///
/// The rounds alternate until the shared intervals stabilise (shared
/// assignments may read locals whose ranges depend on shared reads).
///
/// The client-facing product is branch foldability: a *branch-emitting
/// site* (an `if`/`while`/`assert` condition, or an array access whose
/// index the compiler does not fold — see runtime/Compile.cpp) is
/// *statically determined* when the interval analysis proves its outcome
/// identical in every execution: the condition's interval excludes zero or
/// is exactly [0,0], or the index interval is a singleton. Such a branch
/// takes the recorded direction in every feasible reordering, so the
/// encoder's control-flow constraint for it is vacuous and can be folded
/// away (docs/STATIC_ANALYSIS.md). Queries are per (thread, source line)
/// and AND over every site the line may denote — the same conservative
/// granularity the trace's "L<line>" locations force on the pruner.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_VALUERANGE_H
#define RVP_ANALYSIS_VALUERANGE_H

#include "lang/Ast.h"

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace rvp {

/// A closed integer interval [Lo, Hi] with +/-inf sentinels, plus bottom
/// (= "no value reaches here"). The lattice join is the interval hull.
struct Interval {
  static constexpr int64_t NegInf = std::numeric_limits<int64_t>::min();
  static constexpr int64_t PosInf = std::numeric_limits<int64_t>::max();

  int64_t Lo = 0;
  int64_t Hi = 0;
  bool Bottom = true;

  static Interval bottom() { return Interval{}; }
  static Interval top() { return range(NegInf, PosInf); }
  static Interval constant(int64_t V) { return range(V, V); }
  static Interval range(int64_t Lo, int64_t Hi) {
    Interval I;
    I.Lo = Lo;
    I.Hi = Hi;
    I.Bottom = false;
    return I;
  }

  bool isBottom() const { return Bottom; }
  bool isTop() const { return !Bottom && Lo == NegInf && Hi == PosInf; }
  bool isConstant() const { return !Bottom && Lo == Hi; }
  /// Interval definitely excludes zero (condition always true).
  bool excludesZero() const { return !Bottom && (Lo > 0 || Hi < 0); }
  /// Interval is exactly [0,0] (condition always false).
  bool isZero() const { return isConstant() && Lo == 0; }

  bool operator==(const Interval &O) const {
    return Bottom == O.Bottom && (Bottom || (Lo == O.Lo && Hi == O.Hi));
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }

  /// Hull join; returns true when *this widened.
  bool joinWith(const Interval &O);
  /// Push any bound that moved relative to \p Old out to infinity.
  void widenAgainst(const Interval &Old);
};

/// Interval arithmetic used by the transfer functions (saturating — any
/// overflow risk answers the unbounded direction). Comparisons and logic
/// return [0,1], or the exact constant when the operands decide it.
Interval evalBinary(BinOp Op, const Interval &L, const Interval &R);
Interval evalUnary(UnOp Op, const Interval &V);

class ValueRangeAnalysis {
public:
  /// Re-meets per dataflow node before widening kicks in. Small enough to
  /// terminate fast, large enough that short counted loops (the catalog's
  /// are < 10 iterations) stay precise.
  static constexpr uint32_t WidenThreshold = 8;
  /// Global shared-interval rounds before forcing widening.
  static constexpr uint32_t MaxGlobalRounds = 12;

  /// Runs both fixpoints over \p P. The program must outlive the analysis.
  explicit ValueRangeAnalysis(const Program &P);

  /// Sound interval for shared base name \p Var across all executions;
  /// top for names the program never declares.
  Interval sharedRange(const std::string &Var) const;

  /// True when every read of shared \p Var can only observe one value
  /// (the initializer, and every write re-stores it).
  bool sharedSingleValued(const std::string &Var) const;

  /// True when every branch-emitting site that (thread, line) may denote
  /// is statically determined (see \file). Unknown lines answer false.
  bool branchConstantAt(uint32_t Thread, uint32_t Line) const;

  /// Total branch-emitting sites seen / proven constant (stats surface).
  uint64_t branchSites() const { return NumBranchSites; }
  uint64_t constantBranchSites() const { return NumConstantSites; }

private:
  struct SiteInfo {
    uint32_t Sites = 0;
    uint32_t Constant = 0;
  };

  void collectLocals(const ThreadDecl &T, std::set<std::string> &Locals);
  Interval evalExpr(const Expr &E,
                    const std::map<std::string, Interval> &Locals,
                    const std::set<std::string> &LocalNames) const;

  const Program &Prog;
  std::map<std::string, Interval> SharedIv;
  /// Per thread: line -> (branch sites at that line, sites proven
  /// constant). Foldable iff Sites > 0 and Sites == Constant.
  std::vector<std::map<uint32_t, SiteInfo>> BranchSiteByLine;
  uint64_t NumBranchSites = 0;
  uint64_t NumConstantSites = 0;
};

} // namespace rvp

#endif // RVP_ANALYSIS_VALUERANGE_H
