//===- analysis/ThreadEscape.cpp - Thread-escape / sharing analysis ---------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ThreadEscape.h"

#include "analysis/AstWalk.h"

#include <algorithm>
#include <set>

using namespace rvp;

ThreadEscapeAnalysis::ThreadEscapeAnalysis(const Program &P) : Prog(P) {
  std::set<std::string> SharedNames;
  for (const SharedDecl &D : P.Shareds)
    SharedNames.insert(D.Name);

  // Ensure every declared variable has an entry, so never-accessed
  // declarations still answer queries.
  for (const SharedDecl &D : P.Shareds)
    Vars[D.Name];

  // Pass 1: per-thread access sets. MainSite = -1 marks "not a main
  // top-level context" and is fixed up by the caller below.
  auto recordAccess = [&](const std::string &Name, bool IsWrite,
                          uint32_t Thread, int64_t MainSite) {
    if (!SharedNames.count(Name))
      return;
    VarInfo &V = Vars[Name];
    V.Accessors.push_back(Thread);
    (IsWrite ? V.Written : V.Read) = true;
    if (MainSite >= 0)
      V.MainSites.push_back(MainSite);
  };

  auto recordStmtAccesses = [&](const Stmt &S, uint32_t Thread,
                                int64_t MainSite) {
    if (S.K == Stmt::Kind::Assign || S.K == Stmt::Kind::ArrayAssign)
      recordAccess(S.Name, /*IsWrite=*/true, Thread, MainSite);
    forEachOwnExprNode(S, [&](const Expr &Node) {
      if (Node.K == Expr::Kind::Name || Node.K == Expr::Kind::Index)
        recordAccess(Node.Name, /*IsWrite=*/false, Thread, MainSite);
    });
  };

  for (uint32_t T = 0; T < Prog.Threads.size(); ++T) {
    const ThreadDecl &TD = Prog.Threads[T];
    if (TD.IsMain) {
      // Main: remember which top-level statement covers each access and
      // each source line, for the refined per-site overlap queries.
      for (size_t I = 0; I < TD.Body.size(); ++I) {
        int64_t Idx = static_cast<int64_t>(I);
        const Stmt &Top = *TD.Body[I];
        auto CoverLine = [&](uint32_t Line) {
          auto [It, Fresh] = MainLineIndex.try_emplace(Line, Idx, Idx);
          if (!Fresh) {
            It->second.first = std::min(It->second.first, Idx);
            It->second.second = std::max(It->second.second, Idx);
          }
        };
        auto Visit = [&](const Stmt &S) {
          recordStmtAccesses(S, T, Idx);
          CoverLine(S.Line);
          forEachOwnExprNode(S, [&](const Expr &E) { CoverLine(E.Line); });
        };
        Visit(Top);
        forEachStmt(Top.Body, Visit);
        forEachStmt(Top.ElseBody, Visit);
      }
    } else {
      forEachStmt(TD.Body,
                  [&](const Stmt &S) { recordStmtAccesses(S, T, -1); });
    }
  }

  for (auto &[Name, V] : Vars) {
    std::sort(V.Accessors.begin(), V.Accessors.end());
    V.Accessors.erase(std::unique(V.Accessors.begin(), V.Accessors.end()),
                      V.Accessors.end());
    std::sort(V.MainSites.begin(), V.MainSites.end());
    V.MainSites.erase(std::unique(V.MainSites.begin(), V.MainSites.end()),
                      V.MainSites.end());
  }

  // Pass 2: thread live intervals from main's top-level spawn/join
  // statements. Anything irregular — nested spawn/join, spawn from a
  // non-main thread, duplicates — falls back to "always live".
  Intervals.assign(Prog.Threads.size(), ThreadInterval());
  std::map<std::string, uint32_t> ThreadIdx;
  for (uint32_t T = 0; T < Prog.Threads.size(); ++T)
    ThreadIdx[Prog.Threads[T].Name] = T;

  struct SpawnJoinInfo {
    int64_t TopSpawn = -1, TopJoin = -1;
    uint32_t Spawns = 0, Joins = 0;
    bool Irregular = false; ///< nested or non-main spawn/join
  };
  std::map<uint32_t, SpawnJoinInfo> Info;

  for (uint32_t T = 0; T < Prog.Threads.size(); ++T) {
    const ThreadDecl &TD = Prog.Threads[T];
    for (size_t I = 0; I < TD.Body.size(); ++I) {
      const Stmt &Top = *TD.Body[I];
      auto Classify = [&](const Stmt &S, bool TopLevel) {
        if (S.K != Stmt::Kind::Spawn && S.K != Stmt::Kind::Join)
          return;
        auto It = ThreadIdx.find(S.Name);
        if (It == ThreadIdx.end())
          return;
        SpawnJoinInfo &SJ = Info[It->second];
        bool AtMainTop = TD.IsMain && TopLevel;
        if (S.K == Stmt::Kind::Spawn) {
          ++SJ.Spawns;
          if (AtMainTop)
            SJ.TopSpawn = static_cast<int64_t>(I);
          else
            SJ.Irregular = true;
        } else {
          ++SJ.Joins;
          if (AtMainTop)
            SJ.TopJoin = static_cast<int64_t>(I);
          else
            SJ.Irregular = true;
        }
      };
      Classify(Top, /*TopLevel=*/true);
      forEachStmt(Top.Body,
                  [&](const Stmt &S) { Classify(S, /*TopLevel=*/false); });
      forEachStmt(Top.ElseBody,
                  [&](const Stmt &S) { Classify(S, /*TopLevel=*/false); });
    }
  }

  for (uint32_t T = 1; T < Prog.Threads.size(); ++T) {
    ThreadInterval &IV = Intervals[T];
    auto It = Info.find(T);
    const SpawnJoinInfo SJ =
        It == Info.end() ? SpawnJoinInfo() : It->second;
    if (SJ.Spawns == 0) {
      // Never spawned: the thread never runs; empty interval.
      IV.Spawn = ThreadInterval::AlwaysAfter;
      IV.Join = ThreadInterval::AlwaysBefore;
      continue;
    }
    if (SJ.Spawns != 1 || SJ.Irregular)
      continue; // re-spawned or spawned under control flow: always live
    IV.Spawn = SJ.TopSpawn;
    // The join bounds the thread only when the single spawn precedes the
    // single join at main's top level; anything else leaves the upper end
    // open.
    if (SJ.Joins == 1 && SJ.TopJoin > SJ.TopSpawn)
      IV.Join = SJ.TopJoin;
  }
}

const ThreadEscapeAnalysis::VarInfo *
ThreadEscapeAnalysis::info(const std::string &Var) const {
  // Array cells ("a[3]") query by base name.
  std::string Base = Var.substr(0, Var.find('['));
  auto It = Vars.find(Base);
  return It == Vars.end() ? nullptr : &It->second;
}

const std::vector<uint32_t> &
ThreadEscapeAnalysis::accessors(const std::string &Var) const {
  static const std::vector<uint32_t> Empty;
  const VarInfo *V = info(Var);
  return V ? V->Accessors : Empty;
}

bool ThreadEscapeAnalysis::isWritten(const std::string &Var) const {
  const VarInfo *V = info(Var);
  return V && V->Written;
}

bool ThreadEscapeAnalysis::isRead(const std::string &Var) const {
  const VarInfo *V = info(Var);
  return V && V->Read;
}

bool ThreadEscapeAnalysis::mayHappenInParallel(uint32_t A,
                                               uint32_t B) const {
  if (A == B)
    return false;
  if (A > B)
    std::swap(A, B);
  if (A == 0) {
    // Main vs spawned thread, thread-level: concurrent unless the thread
    // never runs.
    const ThreadInterval &IV = Intervals[B];
    return IV.Spawn != ThreadInterval::AlwaysAfter;
  }
  const ThreadInterval &IA = Intervals[A];
  const ThreadInterval &IB = Intervals[B];
  return !(IA.Join <= IB.Spawn || IB.Join <= IA.Spawn);
}

bool ThreadEscapeAnalysis::lineMayOverlap(uint32_t MainLine,
                                          uint32_t Thread) const {
  if (Thread == 0)
    return false; // main vs main: same thread
  const ThreadInterval &IV = Intervals[Thread];
  auto It = MainLineIndex.find(MainLine);
  if (It == MainLineIndex.end())
    return true; // unknown line: conservative
  auto [MinIdx, MaxIdx] = It->second;
  // Spawn/join statements themselves carry no accesses, so a line whose
  // statements all sit at-or-before the spawn (or at-or-after the join)
  // cannot access anything while the thread is live.
  return !(MaxIdx <= IV.Spawn || MinIdx >= IV.Join);
}

bool ThreadEscapeAnalysis::isThreadShared(const std::string &Var) const {
  const VarInfo *V = info(Var);
  if (!V || V->Accessors.size() < 2)
    return false;
  for (size_t I = 0; I < V->Accessors.size(); ++I) {
    for (size_t J = I + 1; J < V->Accessors.size(); ++J) {
      uint32_t A = V->Accessors[I], B = V->Accessors[J];
      if (A == 0) {
        // Main: check every main access site against B's live interval.
        const ThreadInterval &IV = Intervals[B];
        for (int64_t Site : V->MainSites)
          if (IV.Spawn < Site && Site < IV.Join)
            return true;
      } else if (mayHappenInParallel(A, B)) {
        return true;
      }
    }
  }
  return false;
}

uint64_t ThreadEscapeAnalysis::threadLocalDeclCount() const {
  uint64_t N = 0;
  for (const SharedDecl &D : Prog.Shareds)
    if (!isThreadShared(D.Name))
      ++N;
  return N;
}
