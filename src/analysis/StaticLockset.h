//===- analysis/StaticLockset.h - Must/may lockset analysis ------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static lockset analysis over a thread CFG, tracking per-lock acquisition
/// *counts* so that reentrant acquires (silent at runtime) are modelled
/// exactly:
///
///  * the **must** analysis meets with pointwise min — a lock is must-held
///    at a node iff its count is positive on *every* path reaching it. This
///    underapproximates the dynamic lockset, which is the direction a sound
///    COP pruner needs: if two conflicting accesses both must-hold lock m,
///    every interleaving orders their critical sections, so the pair can
///    never race (Section 2's lockset filter, decided statically).
///  * the **may** analysis meets with pointwise max, saturating at a small
///    cap so loops terminate. It overapproximates: may-count zero at a
///    release means the lock is *definitely* unheld there (a runtime
///    error), and a positive may-count at Exit means some path leaks the
///    lock.
///
/// Both run through the shared solveDataflow() worklist; values are at node
/// entry, before the node's own acquire/release takes effect.
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_STATICLOCKSET_H
#define RVP_ANALYSIS_STATICLOCKSET_H

#include "analysis/Cfg.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rvp {

class StaticLocksetAnalysis {
public:
  /// Saturation bound for the may analysis (keeps loopy reacquire chains
  /// finite-height). Counts at or above the cap mean "held many times".
  static constexpr uint32_t MayCap = 15;

  StaticLocksetAnalysis(const Program &P, const Cfg &G);

  /// Per-lock acquisition counts at entry of \p Node, indexed by
  /// lockIndex(). Meaningless for unreached nodes.
  const std::vector<uint32_t> &mustAt(uint32_t Node) const {
    return Must[Node];
  }
  const std::vector<uint32_t> &mayAt(uint32_t Node) const {
    return May[Node];
  }
  bool reached(uint32_t Node) const { return Reached[Node]; }

  size_t numLocks() const { return LockNames.size(); }
  const std::string &lockName(size_t Idx) const { return LockNames[Idx]; }
  /// Index of \p Name in the program's lock table, or -1 if undeclared.
  int lockIndex(const std::string &Name) const;

  /// Names of locks must-held at entry of \p Node, sorted by declaration
  /// order. Empty for unreached nodes.
  std::vector<std::string> mustHeldNames(uint32_t Node) const;

private:
  std::vector<std::string> LockNames;
  std::map<std::string, uint32_t> LockIdx;
  std::vector<std::vector<uint32_t>> Must, May;
  std::vector<bool> Reached;
};

} // namespace rvp

#endif // RVP_ANALYSIS_STATICLOCKSET_H
