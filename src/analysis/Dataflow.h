//===- analysis/Dataflow.h - Forward dataflow over a Cfg ---------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small forward dataflow framework over analysis/Cfg. An analysis
/// supplies a value domain and three operations:
///
///   struct MyAnalysis {
///     using Domain = ...;            // copyable lattice value
///     Domain boundary() const;       // value at Entry
///     // Meet \p In into \p Out; returns true when Out changed.
///     bool meet(Domain &Out, const Domain &In) const;
///     // Flow through one node (the node's effect on the state).
///     void transfer(const CfgNode &N, Domain &D) const;
///   };
///
/// solve() runs the classic worklist iteration seeded in reverse
/// post-order and returns the fixpoint value at *node entry* for every
/// node (before the node's own transfer). Nodes unreachable from Entry
/// keep a default-constructed Domain and are flagged in
/// DataflowResult::Reached, so clients never mistake "never executed" for
/// "executes with empty state".
///
/// Termination is the caller's obligation: meet must be monotone on a
/// finite-height domain (both analyses here use pointwise min/max over
/// bounded counters).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_DATAFLOW_H
#define RVP_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"

#include <deque>
#include <vector>

namespace rvp {

template <typename Analysis> struct DataflowResult {
  /// Fixpoint at node entry, indexed by node id.
  std::vector<typename Analysis::Domain> In;
  /// False for nodes never reached from Entry.
  std::vector<bool> Reached;
};

template <typename Analysis>
DataflowResult<Analysis> solveDataflow(const Cfg &G, const Analysis &A) {
  DataflowResult<Analysis> R;
  R.In.resize(G.size());
  R.Reached.assign(G.size(), false);
  R.In[G.entry()] = A.boundary();
  R.Reached[G.entry()] = true;

  std::deque<uint32_t> Worklist(G.reversePostOrder().begin(),
                                G.reversePostOrder().end());
  std::vector<bool> OnList(G.size(), false);
  for (uint32_t Id : Worklist)
    OnList[Id] = true;

  while (!Worklist.empty()) {
    uint32_t Id = Worklist.front();
    Worklist.pop_front();
    OnList[Id] = false;
    if (!R.Reached[Id])
      continue; // successors of unreached nodes stay unreached

    typename Analysis::Domain Out = R.In[Id];
    A.transfer(G.node(Id), Out);
    for (uint32_t To : G.node(Id).Succs) {
      bool Changed;
      if (!R.Reached[To]) {
        R.In[To] = Out;
        R.Reached[To] = true;
        Changed = true;
      } else {
        Changed = A.meet(R.In[To], Out);
      }
      if (Changed && !OnList[To]) {
        OnList[To] = true;
        Worklist.push_back(To);
      }
    }
  }
  return R;
}

} // namespace rvp

#endif // RVP_ANALYSIS_DATAFLOW_H
