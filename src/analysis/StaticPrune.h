//===- analysis/StaticPrune.h - Sound static COP pruning ---------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// StaticPruneOracle: the CopPruner implementation that lets the dynamic
/// detectors skip conflicting operation pairs the *program text* already
/// proves race-free. A pair is prunable when any stage fires:
///
///  1. the two accesses can never overlap in time — their threads' live
///     intervals (top-level spawn/join in main) are disjoint, or the main
///     access sits entirely before the spawn / after the join of the other
///     thread. Every window containing both events also contains the
///     end/join/fork/begin chain between them, so MHB orders the pair in
///     every technique; or
///
///  2. both accesses *must* hold a common lock (static must-lockset at
///     every program point the event's source line may denote). The trace
///     then places the two critical sections back to back inside the
///     window; HB and CP derive the release->acquire edge, and the SMT
///     encodings' mutual-exclusion constraints (with boundary critical
///     sections closed to the window edges) make the race formula unsat;
///     or
///
///  3. the static must-happen-before relation (analysis/StaticMhb.h)
///     orders the statement pair in every execution — this catches
///     spawn/join issued away from main's top level, which stage 1's
///     interval analysis cannot see. The witnessing fork/begin/end/join
///     chain again sits inside every window containing both events.
///
/// The oracle is also the detectors' CfFoldOracle: its value-range pass
/// (analysis/ValueRange.h) proves branch events whose condition or index
/// is a compile-time constant under every interleaving, and the encoder
/// folds their cf guards away (detect/RaceEncoder.h).
///
/// All conditions are one-sided: any missing information — unknown trace
/// location, thread not in the program, line absent from the per-thread
/// maps — answers "not prunable" / "not foldable". Race reports with the
/// oracle installed are byte-identical to runs without it
/// (tests/PruneGolden.cmake).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_STATICPRUNE_H
#define RVP_ANALYSIS_STATICPRUNE_H

#include "analysis/StaticMhb.h"
#include "analysis/ThreadEscape.h"
#include "analysis/ValueRange.h"
#include "detect/Detect.h"
#include "lang/Ast.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

namespace rvp {

/// Per-stage prune tallies since construction or the last reset (the
/// bench's per-stage breakdown; stages are tried in order, so each COP is
/// counted at the first stage that fires).
struct PruneStageCounts {
  uint64_t Interval = 0; ///< stage 1: temporal disjointness
  uint64_t Lockset = 0;  ///< stage 2: common must-held lock
  uint64_t Mhb = 0;      ///< stage 3: static must-happen-before
};

class StaticPruneOracle : public CopPruner, public CfFoldOracle {
public:
  /// Runs the static analyses over \p P. The program must outlive the
  /// oracle.
  explicit StaticPruneOracle(const Program &P);

  /// Binds the oracle to the trace it will be queried against: resolves
  /// the trace's "L<line>" location names once. Queries against any other
  /// trace conservatively answer false.
  void bind(const Trace &T);

  bool prunable(const Trace &T, EventId A, EventId B) const override;

  /// CfFoldOracle: branch events whose every site at (thread, line) the
  /// value-range pass proves statically determined.
  bool foldableBranch(const Trace &T, EventId Branch) const override;

  /// Shared declarations proven never concurrently accessed (the
  /// `analysis.vars_thread_local` gauge).
  uint64_t threadLocalVars() const { return Escape.threadLocalDeclCount(); }

  const ThreadEscapeAnalysis &escape() const { return Escape; }
  const StaticMhbAnalysis &staticMhb() const { return Mhb; }
  const ValueRangeAnalysis &valueRange() const { return Ranges; }

  PruneStageCounts stageCounts() const {
    return PruneStageCounts{PrunedInterval.load(std::memory_order_relaxed),
                            PrunedLockset.load(std::memory_order_relaxed),
                            PrunedMhb.load(std::memory_order_relaxed)};
  }
  void resetStageCounts() const {
    PrunedInterval.store(0, std::memory_order_relaxed);
    PrunedLockset.store(0, std::memory_order_relaxed);
    PrunedMhb.store(0, std::memory_order_relaxed);
  }

private:
  /// Must-held lock bitmask for one event of (thread, line), intersected
  /// over every CFG node that line may denote. At most 64 locks are
  /// tracked; programs with more prune less (never unsoundly more).
  uint64_t mustLocksAt(uint32_t Thread, uint32_t Line) const;
  /// Source line of event \p E in the bound trace, 0 when unknown.
  uint32_t lineOf(const Event &E) const;

  ThreadEscapeAnalysis Escape;
  StaticMhbAnalysis Mhb;
  ValueRangeAnalysis Ranges;
  size_t NumThreads;
  /// Per program thread: line -> AND of must-held lock masks of all nodes
  /// registering that line. Lines never seen by a thread are absent
  /// (= no information = empty mask).
  std::vector<std::map<uint32_t, uint64_t>> MustLockByLine;

  const Trace *Bound = nullptr;
  /// LocId -> source line (0 = unparsable/unknown), for the bound trace.
  std::vector<uint32_t> LocLine;

  /// Stage tallies; relaxed atomics because the parallel drivers may
  /// consult the oracle from several workers.
  mutable std::atomic<uint64_t> PrunedInterval{0};
  mutable std::atomic<uint64_t> PrunedLockset{0};
  mutable std::atomic<uint64_t> PrunedMhb{0};
};

} // namespace rvp

#endif // RVP_ANALYSIS_STATICPRUNE_H
