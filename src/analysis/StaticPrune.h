//===- analysis/StaticPrune.h - Sound static COP pruning ---------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// StaticPruneOracle: the CopPruner implementation that lets the dynamic
/// detectors skip conflicting operation pairs the *program text* already
/// proves race-free. A pair is prunable when either
///
///  1. the two accesses can never overlap in time — their threads' live
///     intervals (top-level spawn/join in main) are disjoint, or the main
///     access sits entirely before the spawn / after the join of the other
///     thread. Every window containing both events also contains the
///     end/join/fork/begin chain between them, so MHB orders the pair in
///     every technique; or
///
///  2. both accesses *must* hold a common lock (static must-lockset at
///     every program point the event's source line may denote). The trace
///     then places the two critical sections back to back inside the
///     window; HB and CP derive the release->acquire edge, and the SMT
///     encodings' mutual-exclusion constraints (with boundary critical
///     sections closed to the window edges) make the race formula unsat.
///
/// Both conditions are one-sided: any missing information — unknown trace
/// location, thread not in the program, line absent from the per-thread
/// maps — answers "not prunable". Race reports with the oracle installed
/// are byte-identical to runs without it (tests/PruneGolden.cmake).
///
//===----------------------------------------------------------------------===//

#ifndef RVP_ANALYSIS_STATICPRUNE_H
#define RVP_ANALYSIS_STATICPRUNE_H

#include "analysis/ThreadEscape.h"
#include "detect/Detect.h"
#include "lang/Ast.h"

#include <cstdint>
#include <map>
#include <vector>

namespace rvp {

class StaticPruneOracle : public CopPruner {
public:
  /// Runs the static analyses over \p P. The program must outlive the
  /// oracle.
  explicit StaticPruneOracle(const Program &P);

  /// Binds the oracle to the trace it will be queried against: resolves
  /// the trace's "L<line>" location names once. Queries against any other
  /// trace conservatively answer false.
  void bind(const Trace &T);

  bool prunable(const Trace &T, EventId A, EventId B) const override;

  /// Shared declarations proven never concurrently accessed (the
  /// `analysis.vars_thread_local` gauge).
  uint64_t threadLocalVars() const { return Escape.threadLocalDeclCount(); }

  const ThreadEscapeAnalysis &escape() const { return Escape; }

private:
  /// Must-held lock bitmask for one event of (thread, line), intersected
  /// over every CFG node that line may denote. At most 64 locks are
  /// tracked; programs with more prune less (never unsoundly more).
  uint64_t mustLocksAt(uint32_t Thread, uint32_t Line) const;

  ThreadEscapeAnalysis Escape;
  size_t NumThreads;
  /// Per program thread: line -> AND of must-held lock masks of all nodes
  /// registering that line. Lines never seen by a thread are absent
  /// (= no information = empty mask).
  std::vector<std::map<uint32_t, uint64_t>> MustLockByLine;

  const Trace *Bound = nullptr;
  /// LocId -> source line (0 = unparsable/unknown), for the bound trace.
  std::vector<uint32_t> LocLine;
};

} // namespace rvp

#endif // RVP_ANALYSIS_STATICPRUNE_H
