//===- analysis/Cfg.cpp - Control-flow graphs over MiniRV -------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include <algorithm>

using namespace rvp;

std::optional<int64_t> rvp::foldConstant(const Expr &E) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    return E.IntValue;
  case Expr::Kind::Name:
  case Expr::Kind::Index:
    return std::nullopt;
  case Expr::Kind::Unary: {
    auto V = foldConstant(*E.Lhs);
    if (!V)
      return std::nullopt;
    return E.UOp == UnOp::Neg ? -*V : (*V == 0 ? 1 : 0);
  }
  case Expr::Kind::Binary: {
    auto L = foldConstant(*E.Lhs);
    auto R = foldConstant(*E.Rhs);
    if (!L || !R)
      return std::nullopt;
    switch (E.Op) {
    case BinOp::Add:
      return *L + *R;
    case BinOp::Sub:
      return *L - *R;
    case BinOp::Mul:
      return *L * *R;
    case BinOp::Div:
      return *R == 0 ? std::nullopt : std::optional<int64_t>(*L / *R);
    case BinOp::Mod:
      return *R == 0 ? std::nullopt : std::optional<int64_t>(*L % *R);
    case BinOp::Eq:
      return *L == *R ? 1 : 0;
    case BinOp::Ne:
      return *L != *R ? 1 : 0;
    case BinOp::Lt:
      return *L < *R ? 1 : 0;
    case BinOp::Le:
      return *L <= *R ? 1 : 0;
    case BinOp::Gt:
      return *L > *R ? 1 : 0;
    case BinOp::Ge:
      return *L >= *R ? 1 : 0;
    case BinOp::And:
      return (*L != 0 && *R != 0) ? 1 : 0;
    case BinOp::Or:
      return (*L != 0 || *R != 0) ? 1 : 0;
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

Cfg::Cfg(const ThreadDecl &T) : Decl(&T) {
  addNode(CfgNode::Kind::Entry, nullptr, T.Line, T.Col);
  addNode(CfgNode::Kind::Exit, nullptr, T.Line, T.Col);
  std::vector<uint32_t> Dangling = buildBlock(T.Body, {entry()});
  for (uint32_t Id : Dangling)
    addEdge(Id, exit());
  computeReachability();
}

uint32_t Cfg::addNode(CfgNode::Kind K, const Stmt *S, uint32_t Line,
                      uint32_t Col) {
  CfgNode N;
  N.K = K;
  N.S = S;
  N.Line = Line;
  N.Col = Col;
  Nodes.push_back(std::move(N));
  return static_cast<uint32_t>(Nodes.size() - 1);
}

void Cfg::addEdge(uint32_t From, uint32_t To) {
  Nodes[From].Succs.push_back(To);
  Nodes[To].Preds.push_back(From);
}

std::vector<uint32_t> Cfg::buildBlock(const std::vector<StmtPtr> &Body,
                                      std::vector<uint32_t> Dangling) {
  for (const StmtPtr &SP : Body) {
    const Stmt &S = *SP;
    switch (S.K) {
    case Stmt::Kind::If: {
      uint32_t Cond = addNode(CfgNode::Kind::Branch, &S, S.Line, S.Col);
      for (uint32_t Id : Dangling)
        addEdge(Id, Cond);
      std::optional<int64_t> Folded = foldConstant(*S.Cond);
      bool TakeThen = !Folded || *Folded != 0;
      bool TakeElse = !Folded || *Folded == 0;
      // Untaken arms are still lowered (with no incoming edge) so the
      // reachability pass can report them.
      std::vector<uint32_t> ThenExits = buildBlock(
          S.Body, TakeThen ? std::vector<uint32_t>{Cond}
                           : std::vector<uint32_t>{});
      std::vector<uint32_t> ElseExits = buildBlock(
          S.ElseBody, TakeElse ? std::vector<uint32_t>{Cond}
                               : std::vector<uint32_t>{});
      // buildBlock returns its incoming set for an empty body, so empty
      // arms contribute the condition node itself.
      Dangling.clear();
      if (TakeThen)
        Dangling = std::move(ThenExits);
      if (TakeElse)
        Dangling.insert(Dangling.end(), ElseExits.begin(), ElseExits.end());
      break;
    }
    case Stmt::Kind::While: {
      uint32_t Cond = addNode(CfgNode::Kind::Branch, &S, S.Line, S.Col);
      for (uint32_t Id : Dangling)
        addEdge(Id, Cond);
      std::optional<int64_t> Folded = foldConstant(*S.Cond);
      bool TakeBody = !Folded || *Folded != 0;
      bool TakeExit = !Folded || *Folded == 0;
      std::vector<uint32_t> BodyExits = buildBlock(
          S.Body, TakeBody ? std::vector<uint32_t>{Cond}
                           : std::vector<uint32_t>{});
      if (TakeBody)
        for (uint32_t Id : BodyExits)
          addEdge(Id, Cond);
      Dangling = TakeExit ? std::vector<uint32_t>{Cond}
                          : std::vector<uint32_t>{};
      break;
    }
    case Stmt::Kind::Sync: {
      uint32_t Acq = addNode(CfgNode::Kind::Acquire, &S, S.Line, S.Col);
      for (uint32_t Id : Dangling)
        addEdge(Id, Acq);
      std::vector<uint32_t> BodyExits = buildBlock(S.Body, {Acq});
      uint32_t Rel = addNode(CfgNode::Kind::Release, &S, S.Line, S.Col);
      for (uint32_t Id : BodyExits)
        addEdge(Id, Rel);
      Dangling = {Rel};
      break;
    }
    case Stmt::Kind::Lock:
    case Stmt::Kind::Unlock: {
      uint32_t Id = addNode(S.K == Stmt::Kind::Lock ? CfgNode::Kind::Acquire
                                                    : CfgNode::Kind::Release,
                            &S, S.Line, S.Col);
      for (uint32_t From : Dangling)
        addEdge(From, Id);
      Dangling = {Id};
      break;
    }
    default: {
      uint32_t Id = addNode(CfgNode::Kind::Stmt, &S, S.Line, S.Col);
      for (uint32_t From : Dangling)
        addEdge(From, Id);
      Dangling = {Id};
      break;
    }
    }
  }
  return Dangling;
}

void Cfg::computeReachability() {
  Reachable.assign(Nodes.size(), false);
  Rpo.clear();
  // Iterative DFS with an explicit post-order; reversed at the end.
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Reachable[entry()] = true;
  Stack.push_back({entry(), 0});
  std::vector<uint32_t> PostOrder;
  while (!Stack.empty()) {
    auto &[Id, NextSucc] = Stack.back();
    if (NextSucc < Nodes[Id].Succs.size()) {
      uint32_t To = Nodes[Id].Succs[NextSucc++];
      if (!Reachable[To]) {
        Reachable[To] = true;
        Stack.push_back({To, 0});
      }
    } else {
      PostOrder.push_back(Id);
      Stack.pop_back();
    }
  }
  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
}

std::vector<uint32_t> Cfg::unreachableNodes() const {
  std::vector<uint32_t> Out;
  for (uint32_t Id = 0; Id < size(); ++Id)
    if (!Reachable[Id] && Nodes[Id].S != nullptr)
      Out.push_back(Id);
  return Out; // creation order == source order
}
