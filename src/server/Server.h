//===- server/Server.h - rvpredictd daemon core -----------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The trace-ingest daemon (docs/SERVER.md): one poll()-driven I/O thread
// accepts clients over a Unix-domain socket (and optionally TCP),
// multiplexes their sessions' window analyses onto a shared work-stealing
// ThreadPool, and streams per-window REPORT frames plus a batch-identical
// SUMMARY back. The design invariants the fault drills pin down:
//
//  * Fault isolation: a malformed frame, a garbled byte, a torn write, or
//    an aborted worker kills exactly one session — the client gets one
//    typed ERROR frame, every other session's output is byte-identical to
//    an undisturbed run, and the daemon keeps serving.
//  * Backpressure: each session's ingest is bounded (byte watermarks plus
//    a pending-window budget); past the high watermark the daemon simply
//    stops reading that socket until analysis catches up, which
//    propagates to the client through TCP/unix-socket flow control.
//  * Graceful degradation: when the queue of unanalyzed windows across
//    all sessions crosses the shed threshold, race sessions get their
//    next windows answered by the linear WCP tier instead of the solver
//    pipeline, marked `degraded` in the REPORT frame header.
//  * Clean drain: SIGTERM stops accepting and reading, finishes every
//    queued window, sends each session its SUMMARY, and exits 0 — with
//    a hard deadline (--drain-timeout) so a peer that never reads its
//    summary cannot hold the process open.
//
//===----------------------------------------------------------------------===//

#ifndef RVP_SERVER_SERVER_H
#define RVP_SERVER_SERVER_H

#include "detect/Stream.h"

#include <cstdint>
#include <string>

namespace rvp {

struct ServerOptions {
  /// Unix-domain socket path, unlinked on shutdown ("" = TCP only; at
  /// least one of SocketPath/TcpPort must be set).
  std::string SocketPath;
  /// Also listen on this TCP port on 127.0.0.1 (0 = unix only).
  int TcpPort = 0;
  /// Analysis pool workers (0 = one per hardware thread).
  unsigned Jobs = 1;

  // Budgets (docs/SERVER.md): all per-session unless noted.
  unsigned MaxSessions = 32;       ///< concurrent sessions (global)
  unsigned MaxQueuedWindows = 8;   ///< pending windows before reads pause
  size_t HighWatermark = 1u << 20; ///< ingest bytes before reads pause
  size_t LowWatermark = 64u << 10; ///< ingest bytes to resume reads
  /// Pending windows across all sessions beyond which new race windows
  /// are shed to the WCP tier (0 = never degrade).
  unsigned DegradeThreshold = 0;
  /// Per-window solve deadline: caps DetectorOptions::PerCopBudgetSeconds
  /// for every session, feeding the retry-budget ladder (0 = keep the
  /// configured budget).
  double WindowDeadlineSeconds = 0;
  /// Closes sessions idle between frames, and draining sessions whose
  /// peer stops reading its output (0 = never).
  double IdleTimeoutSeconds = 0;
  double StallTimeoutSeconds = 0; ///< close sessions stalled mid-frame
  /// Hard bound on the SIGTERM drain phase: sessions still unfinished
  /// this many seconds after the stop request are dropped so shutdown
  /// always terminates (0 = wait forever).
  double DrainTimeoutSeconds = 60;
  /// Root directory for per-session crash-recovery checkpoints; sessions
  /// opt in with a `ckpt=<key>` HELLO option ("" = recovery off).
  std::string CheckpointRoot;

  /// Session defaults; HELLO options override per session.
  StreamOptions Stream;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the listeners. False (with \p Error) on bind failure.
  bool start(std::string &Error);

  /// Serves until requestStop(); returns the process exit code
  /// (ExitSuccess after a clean drain, ExitInternal on loop failure).
  int run();

  /// Begins a drain from any thread or signal handler (async-signal-safe:
  /// sets a flag and writes the self-pipe).
  void requestStop();

private:
  struct Impl;
  Impl *M;
};

} // namespace rvp

#endif // RVP_SERVER_SERVER_H
