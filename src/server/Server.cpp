//===- server/Server.cpp - rvpredictd daemon core -------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "detect/Checkpoint.h"
#include "server/Framing.h"
#include "support/CommandLine.h"
#include "support/FaultInjector.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace rvp;

namespace {

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

Counter &serverCounter(const char *Name) {
  return MetricsRegistry::global().counter(Name);
}

/// One connected client. Exactly one worker task may own Det at a time
/// (InFlight); the I/O thread buffers arriving DATA in Inbox meanwhile
/// and feeds it between tasks, so the detector is never shared.
struct Session {
  uint64_t Id = 0;
  int Fd = -1;
  FrameDecoder Decoder;
  std::string OutBuf; ///< encoded frames not yet written
  std::string Inbox;  ///< DATA bytes not yet fed to the detector
  std::unique_ptr<StreamDetector> Det;

  bool GotHello = false;
  bool FinReceived = false;
  bool ReadClosed = false; ///< peer EOF seen; stop polling for input
  bool InFlight = false; ///< a pool worker owns Det right now
  bool Paused = false;   ///< POLLIN off: backpressure engaged
  bool Draining = false; ///< close as soon as OutBuf flushes
  bool Dead = false;     ///< torn down; erased at the next sweep
  double LastActivity = 0;
  uint64_t PendingCache = 0; ///< last observed pendingWindows()

  // Crash recovery (ckpt=<key> HELLO option, docs/SERVER.md).
  std::unique_ptr<CheckpointStore> Ckpt;
  std::string RecoveredState;
  uint64_t RecoveredWindows = 0;
  bool Recovering = false;
};

/// What a worker task hands back to the I/O thread.
struct Completion {
  uint64_t SessionId = 0;
  bool Finish = false;
  bool Ok = false;
  bool Aborted = false; ///< worker threw (incl. server.worker_abort)
  StreamStep Step;
  std::vector<StreamStep> TailSteps;
  std::string Summary;
  std::string Error;
};

} // namespace

struct Server::Impl {
  explicit Impl(ServerOptions O) : Opts(std::move(O)) {}

  ServerOptions Opts;
  int UnixFd = -1;
  int TcpFd = -1;
  bool OwnsSocketPath = false; ///< we bound SocketPath; unlink on exit
  int WakeR = -1, WakeW = -1;
  std::atomic<bool> Stop{false};
  bool ListenersClosed = false;
  std::unique_ptr<ThreadPool> Pool;
  std::unordered_map<uint64_t, std::unique_ptr<Session>> Sessions;
  uint64_t NextSessionId = 1;
  std::mutex DoneMutex;
  std::deque<Completion> Done;

  // ------------------------------------------------------------ lifecycle

  bool start(std::string &Error);
  int run();
  void wake() {
    char C = 0;
    // Best-effort: a full pipe already guarantees a pending wake-up.
    (void)::write(WakeW, &C, 1);
  }

  // ------------------------------------------------------------ sessions

  void acceptClients(int ListenFd);
  void readSocket(Session &S);
  bool handleFrame(Session &S, Frame &F);
  bool applyHello(Session &S, std::string_view Payload, std::string &Error);
  void pump(Session &S);
  void submitStep(Session &S, bool Degrade);
  void submitFinish(Session &S);
  void handleCompletion(Completion &C);
  void queueFrame(Session &S, FrameType Type, std::string_view Payload);
  void queueReport(Session &S, const StreamStep &Step);
  void sessionError(Session &S, const std::string &Message);
  bool flushOut(Session &S);
  void teardown(Session &S);
  void updatePause(Session &S);
  void checkTimeouts(double Now);
  uint64_t globalPending() const;
};

// --------------------------------------------------------------- startup

/// True if something currently accepts connections on \p Addr — i.e. a
/// live daemon, as opposed to a stale socket file left by a crash.
static bool unixSocketAlive(const sockaddr_un &Addr) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  bool Alive = ::connect(Fd, reinterpret_cast<const sockaddr *>(&Addr),
                         sizeof(Addr)) == 0;
  ::close(Fd);
  return Alive;
}

static int listenUnix(const std::string &Path, std::string &Error) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    Error = "socket path too long: " + Path;
    return -1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  struct stat St;
  if (::lstat(Path.c_str(), &St) == 0) {
    // Only a socket file may be removed, and only a dead one: unlinking a
    // live daemon's socket would silently steal its name (and this
    // instance's shutdown would later unlink the survivor's socket too).
    if (!S_ISSOCK(St.st_mode)) {
      Error = Path + " exists and is not a socket; refusing to remove it";
      return -1;
    }
    if (unixSocketAlive(Addr)) {
      Error = Path + " is already served by a running daemon";
      return -1;
    }
    ::unlink(Path.c_str());
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = formatString("socket: %s", std::strerror(errno));
    return -1;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    Error = formatString("bind %s: %s", Path.c_str(), std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

static int listenTcp(int Port, std::string &Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = formatString("socket: %s", std::strerror(errno));
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 64) != 0) {
    Error = formatString("bind 127.0.0.1:%d: %s", Port, std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool Server::Impl::start(std::string &Error) {
  if (Opts.SocketPath.empty() && Opts.TcpPort <= 0) {
    Error = "a listener is required (--socket and/or --port)";
    return false;
  }
  if (!Opts.SocketPath.empty()) {
    UnixFd = listenUnix(Opts.SocketPath, Error);
    if (UnixFd < 0)
      return false;
    OwnsSocketPath = true;
  }
  if (Opts.TcpPort > 0) {
    TcpFd = listenTcp(Opts.TcpPort, Error);
    if (TcpFd < 0) {
      if (UnixFd >= 0) {
        ::close(UnixFd);
        UnixFd = -1;
      }
      return false;
    }
  }
  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Error = formatString("pipe: %s", std::strerror(errno));
    return false;
  }
  WakeR = Pipe[0];
  WakeW = Pipe[1];
  setNonBlocking(WakeR);
  setNonBlocking(WakeW);
  setNonBlocking(UnixFd);
  if (TcpFd >= 0)
    setNonBlocking(TcpFd);
  Pool = std::make_unique<ThreadPool>(Opts.Jobs);
  return true;
}

// ---------------------------------------------------------------- accept

void Server::Impl::acceptClients(int ListenFd) {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN or transient failure: poll again later
    if (Sessions.size() >= Opts.MaxSessions) {
      // Budget refusal: one typed error, then the door. Best effort — a
      // client that cannot even read this was not going to fit anyway.
      std::string Refusal = encodeFrame(
          FrameType::Error,
          formatString("session budget exhausted (max %u sessions)\n",
                       Opts.MaxSessions));
      (void)::write(Fd, Refusal.data(), Refusal.size());
      ::close(Fd);
      serverCounter("server.sessions_refused").inc();
      continue;
    }
    setNonBlocking(Fd);
    auto S = std::make_unique<Session>();
    S->Id = NextSessionId++;
    S->Fd = Fd;
    S->LastActivity = monotonicSeconds();
    queueFrame(*S, FrameType::Welcome, "rvpredictd 1\n");
    serverCounter("server.sessions_opened").inc();
    Sessions.emplace(S->Id, std::move(S));
  }
}

// ------------------------------------------------------------------ read

void Server::Impl::readSocket(Session &S) {
  char Buf[65536];
  bool Eof = false;
  size_t PassBytes = 0;
  for (;;) {
    ssize_t N = ::read(S.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      S.LastActivity = monotonicSeconds();
      S.Decoder.feed(std::string_view(Buf, static_cast<size_t>(N)));
      PassBytes += static_cast<size_t>(N);
      // Bound one pass at the high watermark so a client that writes
      // faster than we drain cannot pin this loop: decode what arrived
      // and let updatePause judge first — poll is level-triggered, so
      // anything left in the kernel buffer re-fires immediately.
      if (PassBytes >= Opts.HighWatermark)
        break;
      if (static_cast<size_t>(N) < sizeof(Buf))
        break;
      continue;
    }
    if (N == 0) {
      Eof = true;
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    serverCounter("server.sessions_errored").inc();
    teardown(S);
    return;
  }

  // Decode before judging the EOF: a client that sends FIN and closes in
  // one burst delivers the FIN frame and the EOF in the same read pass.
  Frame F;
  std::string Error;
  for (;;) {
    FrameDecoder::Result R = S.Decoder.next(F, Error);
    if (R == FrameDecoder::Result::NeedMore)
      break;
    if (R == FrameDecoder::Result::Malformed) {
      serverCounter("server.frames_rejected").inc();
      sessionError(S, "malformed frame: " + Error);
      return;
    }
    if (!handleFrame(S, F))
      return; // the frame handler already tore the session down
  }
  if (Eof) {
    S.ReadClosed = true; // stop polling for input (else EOF spins)
    // After FIN this is the client half-closing while it waits for its
    // summary; before FIN the client vanished mid-stream.
    if (!S.FinReceived && !S.Draining) {
      serverCounter("server.sessions_errored").inc();
      teardown(S);
      return;
    }
  }
  pump(S);
}

bool Server::Impl::handleFrame(Session &S, Frame &F) {
  switch (F.Type) {
  case FrameType::Hello: {
    if (S.GotHello) {
      sessionError(S, "duplicate HELLO");
      return false;
    }
    std::string Error;
    if (!applyHello(S, F.Payload, Error)) {
      sessionError(S, Error);
      return false;
    }
    S.GotHello = true;
    return true;
  }
  case FrameType::Data:
    if (!S.GotHello) {
      sessionError(S, "DATA before HELLO");
      return false;
    }
    if (S.FinReceived) {
      sessionError(S, "DATA after FIN");
      return false;
    }
    S.Inbox.append(F.Payload);
    return true;
  case FrameType::Fin:
    if (!S.GotHello) {
      sessionError(S, "FIN before HELLO");
      return false;
    }
    S.FinReceived = true;
    return true;
  case FrameType::Welcome:
  case FrameType::Report:
  case FrameType::Summary:
  case FrameType::Error:
    sessionError(S, formatString("unexpected client frame type '%c'",
                                 static_cast<char>(F.Type)));
    return false;
  }
  return true;
}

// ----------------------------------------------------------------- hello

bool Server::Impl::applyHello(Session &S, std::string_view Payload,
                              std::string &Error) {
  StreamOptions SO = Opts.Stream;
  if (Opts.WindowDeadlineSeconds > 0)
    SO.Detect.PerCopBudgetSeconds = std::min(
        SO.Detect.PerCopBudgetSeconds, Opts.WindowDeadlineSeconds);
  std::string CkptKey;

  for (std::string_view Line : split(Payload, '\n')) {
    for (std::string_view Tok : split(trim(Line), ' ')) {
      if (Tok.empty())
        continue;
      size_t Eq = Tok.find('=');
      if (Eq == std::string_view::npos) {
        Error = "malformed HELLO option '" + std::string(Tok) +
                "' (expected key=value)";
        return false;
      }
      std::string_view Key = Tok.substr(0, Eq);
      std::string Val(Tok.substr(Eq + 1));
      if (Key == "property") {
        if (!parseStreamProperty(Val, SO.Property)) {
          Error = "unknown property '" + Val + "'";
          return false;
        }
      } else if (Key == "technique") {
        if (Val == "hb")
          SO.Tech = Technique::Hb;
        else if (Val == "cp")
          SO.Tech = Technique::Cp;
        else if (Val == "said")
          SO.Tech = Technique::Said;
        else if (Val == "rv")
          SO.Tech = Technique::Maximal;
        else {
          Error = "unknown technique '" + Val + "'";
          return false;
        }
      } else if (Key == "tier") {
        if (Val == "vc")
          SO.Detect.Tier = DetectTier::Vc;
        else if (Val == "smt")
          SO.Detect.Tier = DetectTier::Smt;
        else if (Val == "hybrid")
          SO.Detect.Tier = DetectTier::Hybrid;
        else {
          Error = "tier must be vc, smt, or hybrid (got '" + Val + "')";
          return false;
        }
      } else if (Key == "window") {
        int64_t N = 0;
        if (!parseInt(Val, N) || N <= 0) {
          Error = "window must be a positive event count";
          return false;
        }
        SO.Detect.WindowSize = static_cast<uint32_t>(N);
      } else if (Key == "budget") {
        char *End = nullptr;
        double B = std::strtod(Val.c_str(), &End);
        if (End == Val.c_str() || *End != '\0' || !(B > 0)) {
          Error = "budget must be a positive number of seconds";
          return false;
        }
        SO.Detect.PerCopBudgetSeconds =
            Opts.WindowDeadlineSeconds > 0
                ? std::min(B, Opts.WindowDeadlineSeconds)
                : B;
      } else if (Key == "skip-bad-events") {
        SO.Parse.SkipBadEvents = Val == "1" || Val == "true";
      } else if (Key == "ckpt") {
        if (Val.empty() ||
            Val.find_first_not_of("abcdefghijklmnopqrstuvwxyz"
                                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                                  "0123456789_-") != std::string::npos) {
          Error = "ckpt key must be non-empty [A-Za-z0-9_-]";
          return false;
        }
        CkptKey = Val;
      } else {
        Error = "unknown HELLO option '" + std::string(Key) + "'";
        return false;
      }
    }
  }

  // The same combination rules the CLI enforces (exit 2 there, a typed
  // ERROR frame here): the vc tier covers races under rv/said only.
  if (SO.Detect.Tier == DetectTier::Vc) {
    if (SO.Property != StreamProperty::Race) {
      Error = "tier=vc detects races only";
      return false;
    }
    if (SO.Tech != Technique::Maximal && SO.Tech != Technique::Said) {
      Error = "tier=vc requires technique rv or said";
      return false;
    }
  }
  SO.Detect.CollectWitnesses = SO.Detect.Tier != DetectTier::Vc;
  SO.Detect.CheckTiers = false;
  SO.Detect.Jobs = 1; // sessions parallelize across the daemon pool
  SO.Render.VcTier = SO.Detect.Tier == DetectTier::Vc;
  SO.Render.WitnessTag =
      SO.Tech == Technique::Maximal && SO.Detect.CollectWitnesses;
  SO.Render.WitnessEvents = false;

  if (!CkptKey.empty() && !Opts.CheckpointRoot.empty()) {
    // Recovery fingerprint pins the session flags (the trace is still
    // streaming in, so unlike batch mode it cannot be pinned here; the
    // resume-mismatch guard in handleCompletion covers a changed trace).
    uint64_t Fingerprint = checkpointHash(formatString(
        "server property=%d technique=%s window=%u tier=%s",
        static_cast<int>(SO.Property), techniqueName(SO.Tech),
        SO.Detect.WindowSize, tierName(SO.Detect.Tier)));
    S.Ckpt = std::make_unique<CheckpointStore>(
        Opts.CheckpointRoot + "/" + CkptKey, Fingerprint);
    std::string Snapshot;
    CheckpointLoad Outcome = CheckpointLoad::None;
    int64_t Last = S.Ckpt->loadLatest(Snapshot, &Outcome);
    if (Outcome == CheckpointLoad::FingerprintMismatch) {
      // The batch CLI exits 2 here; the daemon must never exit for one
      // client, so the session gets the equivalent typed refusal.
      Error = "checkpoint directory holds snapshots from a different "
              "analysis; rerun with the original options or a fresh key";
      return false;
    }
    if (Last >= 0) {
      S.RecoveredState = std::move(Snapshot);
      S.RecoveredWindows = static_cast<uint64_t>(Last) + 1;
      S.Recovering = true;
      serverCounter("server.sessions_recovered").inc();
    }
  }

  S.Det = std::make_unique<StreamDetector>(std::move(SO));
  return true;
}

// ------------------------------------------------------------------ pump

uint64_t Server::Impl::globalPending() const {
  uint64_t Total = 0;
  for (const auto &[Id, S] : Sessions)
    Total += S->PendingCache + (S->InFlight ? 1 : 0);
  return Total;
}

void Server::Impl::pump(Session &S) {
  if (S.Dead || S.Draining || !S.GotHello || !S.Det)
    return;
  if (S.InFlight) {
    // A worker owns the detector, so nothing drains Inbox until the
    // completion comes back — the byte watermark must stay live here or
    // a fast client grows the buffer without bound for the whole window
    // analysis (this path is exactly what the high watermark is for).
    updatePause(S);
    return;
  }

  if (!S.Inbox.empty()) {
    S.Det->feed(S.Inbox);
    S.Inbox.clear();
    std::string ParseError;
    if (!S.Det->checkParse(ParseError)) {
      sessionError(S, "trace error: " + ParseError);
      return;
    }
  }

  // Crash recovery: hold analysis until the replayed prefix covers the
  // recovered windows, then install the snapshot and continue after them.
  if (S.Recovering) {
    if (S.Det->pendingWindows() >= S.RecoveredWindows) {
      S.Det->restore(std::move(S.RecoveredState), S.RecoveredWindows);
      S.Recovering = false;
    } else if (S.FinReceived) {
      // The replay is shorter than the snapshot: different trace. Start
      // over from scratch — always sound, the snapshot only saved time.
      S.Recovering = false;
      S.RecoveredState.clear();
      S.RecoveredWindows = 0;
    } else {
      S.PendingCache = 0; // suspended: nothing is analyzable yet
      updatePause(S);
      return;
    }
  }

  S.PendingCache = S.Det->pendingWindows();
  if (S.Det->windowReady()) {
    bool Degrade = Opts.DegradeThreshold != 0 &&
                   globalPending() > Opts.DegradeThreshold;
    submitStep(S, Degrade);
  } else if (S.FinReceived) {
    submitFinish(S);
  }
  updatePause(S);
}

void Server::Impl::submitStep(Session &S, bool Degrade) {
  S.InFlight = true;
  StreamDetector *Det = S.Det.get();
  uint64_t Id = S.Id;
  Pool->submit([this, Det, Id, Degrade] {
    Completion C;
    C.SessionId = Id;
    try {
      if (FaultInjector::shouldFail(faults::ServerWorkerAbort))
        throw std::runtime_error("injected worker abort");
      // Drill hook: a slow window analysis, long enough that a client
      // keeps uploading the whole time — how the byte watermark is hit.
      if (FaultInjector::shouldFail(faults::ServerWorkerStall))
        std::this_thread::sleep_for(std::chrono::milliseconds(600));
      std::string Error;
      C.Ok = Det->step(C.Step, Degrade, Error);
      C.Error = Error;
    } catch (const std::exception &E) {
      C.Aborted = true;
      C.Error = E.what();
    }
    {
      std::lock_guard<std::mutex> Guard(DoneMutex);
      Done.push_back(std::move(C));
    }
    wake();
  });
}

void Server::Impl::submitFinish(Session &S) {
  S.InFlight = true;
  StreamDetector *Det = S.Det.get();
  uint64_t Id = S.Id;
  Pool->submit([this, Det, Id] {
    Completion C;
    C.SessionId = Id;
    C.Finish = true;
    try {
      if (FaultInjector::shouldFail(faults::ServerWorkerAbort))
        throw std::runtime_error("injected worker abort");
      std::string Error;
      C.Ok = Det->finish(C.Summary, Error, &C.TailSteps);
      C.Error = Error;
    } catch (const std::exception &E) {
      C.Aborted = true;
      C.Error = E.what();
    }
    {
      std::lock_guard<std::mutex> Guard(DoneMutex);
      Done.push_back(std::move(C));
    }
    wake();
  });
}

void Server::Impl::handleCompletion(Completion &C) {
  auto It = Sessions.find(C.SessionId);
  if (It == Sessions.end())
    return;
  Session &S = *It->second;
  S.InFlight = false;
  if (S.Dead) {
    teardown(S); // deferred teardown now that the worker let go
    return;
  }
  if (C.Aborted) {
    serverCounter("server.worker_aborts").inc();
    sessionError(S, "analysis aborted: " + C.Error);
    return;
  }
  if (!C.Ok && !C.Error.empty()) {
    sessionError(S, "trace error: " + C.Error);
    return;
  }
  if (C.Finish) {
    for (const StreamStep &Step : C.TailSteps)
      queueReport(S, Step);
    queueFrame(S, FrameType::Summary, C.Summary);
    serverCounter("server.sessions_completed").inc();
    S.Draining = true;
    flushOut(S);
    return;
  }
  if (C.Ok) {
    queueReport(S, C.Step);
    if (S.Dead)
      return; // a torn write during the report killed the session
    // Resume-mismatch guard: if the in-memory state failed to apply, the
    // driver restarted from window 0 — the replayed trace does not match
    // the recovered snapshot, and silently mixing them would mislabel
    // every report.
    if (S.Det->run().WindowsDone != C.Step.Window + 1) {
      sessionError(S, "resume state does not match the replayed trace");
      return;
    }
    if (S.Ckpt && S.Ckpt->enabled())
      S.Ckpt->save(S.Det->run().WindowsDone - 1, S.Det->state());
  }
  pump(S);
}

// ---------------------------------------------------------------- output

void Server::Impl::queueFrame(Session &S, FrameType Type,
                              std::string_view Payload) {
  S.OutBuf += encodeFrame(Type, Payload);
  flushOut(S);
}

void Server::Impl::queueReport(Session &S, const StreamStep &Step) {
  serverCounter("server.windows_analyzed").inc();
  if (Step.Degraded)
    serverCounter("server.degraded_windows").inc();
  std::string Payload = formatString(
      "window %llu %s findings=%zu unknowns=%zu\n",
      static_cast<unsigned long long>(Step.Window),
      Step.Degraded ? "degraded" : "ok", Step.NewFindings,
      Step.NewUnknowns);
  Payload += Step.Delta;
  queueFrame(S, FrameType::Report, Payload);
}

void Server::Impl::sessionError(Session &S, const std::string &Message) {
  serverCounter("server.sessions_errored").inc();
  // Quarantine: one typed diagnostic, stop reading, close once it
  // flushes. The error never escalates past this session.
  queueFrame(S, FrameType::Error, Message + "\n");
  S.Draining = true;
  flushOut(S);
}

bool Server::Impl::flushOut(Session &S) {
  if (S.Dead)
    return false;
  while (!S.OutBuf.empty()) {
    // Injected transport failure mid-write: the drills prove the daemon
    // treats a torn write like any peer reset — this session dies, the
    // rest keep streaming.
    if (FaultInjector::shouldFail(faults::NetShortWrite)) {
      serverCounter("server.sessions_errored").inc();
      teardown(S);
      return false;
    }
    ssize_t N = ::write(S.Fd, S.OutBuf.data(), S.OutBuf.size());
    if (N > 0) {
      // Write progress counts as activity: the draining timeout below
      // must only reap peers that stopped reading, not slow ones.
      S.LastActivity = monotonicSeconds();
      S.OutBuf.erase(0, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true; // poll for POLLOUT and drain later
    serverCounter("server.sessions_errored").inc();
    teardown(S);
    return false;
  }
  if (S.Draining && S.OutBuf.empty())
    teardown(S);
  return !S.Dead;
}

void Server::Impl::teardown(Session &S) {
  if (S.InFlight) {
    // A worker still owns the detector; close nothing it may touch.
    // handleCompletion finishes the teardown when the task returns.
    S.Dead = true;
    return;
  }
  if (S.Fd >= 0) {
    ::close(S.Fd);
    S.Fd = -1;
    serverCounter("server.sessions_closed").inc();
  }
  S.Dead = true;
}

// ------------------------------------------------------------- pressure

void Server::Impl::updatePause(Session &S) {
  if (S.Dead || S.Draining)
    return;
  // Two bounds: Inbox bytes accumulate while a worker holds the detector
  // (pump drains them to zero once it returns), and the pending-window
  // budget covers bytes already fed but not yet analyzed. Together they
  // keep per-session ingest bounded no matter how fast the client is.
  bool Pause;
  if (S.Paused)
    // Hysteresis: resume only once both signals are comfortably below
    // their high marks, so a session does not flap at the boundary.
    Pause = S.Inbox.size() > Opts.LowWatermark ||
            S.PendingCache >= Opts.MaxQueuedWindows;
  else
    Pause = S.Inbox.size() >= Opts.HighWatermark ||
            S.PendingCache >= Opts.MaxQueuedWindows;
  if (Pause && !S.Paused)
    serverCounter("server.backpressure_events").inc();
  S.Paused = Pause;
}

void Server::Impl::checkTimeouts(double Now) {
  for (auto &[Id, SP] : Sessions) {
    Session &S = *SP;
    if (S.Dead || S.InFlight)
      continue;
    double Quiet = Now - S.LastActivity;
    if (S.Draining) {
      // Write-side timeout: a Draining session persists only while its
      // OutBuf waits on the peer, so a client that never reads its
      // SUMMARY would otherwise hold a slot and fd forever (and wedge a
      // SIGTERM drain). flushOut refreshes LastActivity on progress.
      if (Opts.IdleTimeoutSeconds > 0 && Quiet > Opts.IdleTimeoutSeconds) {
        serverCounter("server.drain_timeouts").inc();
        teardown(S);
      }
      continue;
    }
    if (Opts.StallTimeoutSeconds > 0 && S.Decoder.midFrame() &&
        Quiet > Opts.StallTimeoutSeconds) {
      serverCounter("server.stall_timeouts").inc();
      sessionError(S, formatString("stalled mid-frame for %.1fs", Quiet));
      continue;
    }
    if (Opts.IdleTimeoutSeconds > 0 && !S.FinReceived &&
        S.PendingCache == 0 && Quiet > Opts.IdleTimeoutSeconds) {
      serverCounter("server.idle_timeouts").inc();
      sessionError(S, formatString("idle for %.1fs", Quiet));
    }
  }
}

// -------------------------------------------------------------- run loop

int Server::Impl::run() {
  std::vector<pollfd> Polls;
  std::vector<uint64_t> PollSession; // parallel to Polls; 0 = not a session
  double DrainStart = 0;
  while (true) {
    bool Stopping = Stop.load(std::memory_order_relaxed);
    if (Stopping && !ListenersClosed) {
      DrainStart = monotonicSeconds();
      // Drain: stop accepting, force-FIN every live session so each gets
      // a summary over what it sent, and close handshake stragglers.
      if (UnixFd >= 0)
        ::close(UnixFd);
      if (TcpFd >= 0)
        ::close(TcpFd);
      UnixFd = TcpFd = -1;
      ListenersClosed = true;
      for (auto &[Id, SP] : Sessions) {
        Session &S = *SP;
        if (S.Dead || S.Draining)
          continue;
        if (!S.GotHello) {
          teardown(S);
          continue;
        }
        S.FinReceived = true;
        pump(S);
      }
    }

    // Sweep sessions torn down in the previous iteration.
    for (auto It = Sessions.begin(); It != Sessions.end();)
      It = It->second->Dead && !It->second->InFlight ? Sessions.erase(It)
                                                     : std::next(It);
    if (Stopping && Sessions.empty())
      return ExitSuccess;
    if (Stopping && Opts.DrainTimeoutSeconds > 0 &&
        monotonicSeconds() - DrainStart > Opts.DrainTimeoutSeconds) {
      // The drain must terminate even if a client never reads its
      // summary or a worker is wedged: drop whatever is left. In-flight
      // sessions are only marked Dead here; the pool joins in the
      // destructor before any session memory is released.
      serverCounter("server.drain_forced").inc();
      for (auto &[Id, SP] : Sessions)
        teardown(*SP);
      return ExitSuccess;
    }

    Polls.clear();
    PollSession.clear();
    Polls.push_back({WakeR, POLLIN, 0});
    PollSession.push_back(0);
    if (UnixFd >= 0) {
      Polls.push_back({UnixFd, POLLIN, 0});
      PollSession.push_back(0);
    }
    if (TcpFd >= 0) {
      Polls.push_back({TcpFd, POLLIN, 0});
      PollSession.push_back(0);
    }
    for (auto &[Id, SP] : Sessions) {
      Session &S = *SP;
      if (S.Dead || S.Fd < 0)
        continue;
      short Events = 0;
      if (!Stopping && !S.Paused && !S.Draining && !S.ReadClosed)
        Events |= POLLIN;
      if (!S.OutBuf.empty())
        Events |= POLLOUT;
      Polls.push_back({S.Fd, Events, 0});
      PollSession.push_back(Id);
    }

    int N = ::poll(Polls.data(), static_cast<nfds_t>(Polls.size()), 100);
    if (N < 0 && errno != EINTR)
      return ExitInternal;

    if (Polls[0].revents & POLLIN) {
      char Sink[256];
      while (::read(WakeR, Sink, sizeof(Sink)) > 0) {
      }
    }

    // Worker completions first: they free sessions for the pump below.
    for (;;) {
      Completion C;
      {
        std::lock_guard<std::mutex> Guard(DoneMutex);
        if (Done.empty())
          break;
        C = std::move(Done.front());
        Done.pop_front();
      }
      handleCompletion(C);
    }

    for (size_t I = 1; I < Polls.size(); ++I) {
      if (Polls[I].revents == 0)
        continue;
      if (PollSession[I] == 0) {
        acceptClients(Polls[I].fd);
        continue;
      }
      auto It = Sessions.find(PollSession[I]);
      if (It == Sessions.end())
        continue;
      Session &S = *It->second;
      if (S.Dead)
        continue;
      if (Polls[I].revents & POLLOUT)
        if (!flushOut(S))
          continue;
      if (Polls[I].revents & POLLIN)
        readSocket(S);
      if (S.Dead)
        continue;
      if (Polls[I].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // HUP with FIN already received is the client half-closing while
        // it waits for its summary — keep going. Anything else is a drop.
        if (!S.FinReceived && !S.Draining) {
          serverCounter("server.sessions_errored").inc();
          teardown(S);
        }
      }
    }

    double Now = monotonicSeconds();
    checkTimeouts(Now);

    // Pump everything idle: newly fed sessions, sessions whose worker
    // finished, sessions unblocked by the watermark hysteresis.
    for (auto &[Id, SP] : Sessions)
      pump(*SP);
  }
}

// ------------------------------------------------------------ public api

Server::Server(ServerOptions Opts) : M(new Impl(std::move(Opts))) {}

Server::~Server() {
  // The pool drains first: in-flight tasks may still touch sessions and
  // the wake pipe, so both must outlive the workers.
  M->Pool.reset();
  if (M->UnixFd >= 0)
    ::close(M->UnixFd);
  if (M->TcpFd >= 0)
    ::close(M->TcpFd);
  if (M->WakeR >= 0)
    ::close(M->WakeR);
  if (M->WakeW >= 0)
    ::close(M->WakeW);
  // Unlink only a path this instance actually bound — a start() refused
  // because a live daemon serves the path must not remove its socket.
  if (M->OwnsSocketPath)
    ::unlink(M->Opts.SocketPath.c_str());
  delete M;
}

bool Server::start(std::string &Error) { return M->start(Error); }

int Server::run() { return M->run(); }

void Server::requestStop() {
  M->Stop.store(true, std::memory_order_relaxed);
  M->wake();
}
