//===- server/Framing.cpp - rvpredictd wire protocol ----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Framing.h"

#include "support/FaultInjector.h"
#include "support/StringUtils.h"

using namespace rvp;

static bool knownType(char C) {
  switch (static_cast<FrameType>(C)) {
  case FrameType::Hello:
  case FrameType::Data:
  case FrameType::Fin:
  case FrameType::Welcome:
  case FrameType::Report:
  case FrameType::Summary:
  case FrameType::Error:
    return true;
  }
  return false;
}

std::string rvp::encodeFrame(FrameType Type, std::string_view Payload) {
  std::string Out;
  Out.reserve(Payload.size() + 5);
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  Out.push_back(static_cast<char>(Len >> 24 & 0xff));
  Out.push_back(static_cast<char>(Len >> 16 & 0xff));
  Out.push_back(static_cast<char>(Len >> 8 & 0xff));
  Out.push_back(static_cast<char>(Len & 0xff));
  Out.push_back(static_cast<char>(Type));
  Out.append(Payload);
  return Out;
}

void FrameDecoder::feed(std::string_view Bytes) {
  if (Bytes.empty())
    return;
  size_t Start = Buf.size();
  Buf.append(Bytes);
  // Deterministic corruption upstream of all validation: the drills prove
  // a garbled stream kills one session with a typed error, not the server.
  if (FaultInjector::shouldFail(faults::NetFrameGarble))
    Buf[Start + Buf.size() % Bytes.size()] ^= 0x20;
  // Compact once the consumed prefix dominates, so a long-lived session
  // does not grow its receive buffer without bound.
  if (Off > 4096 && Off > Buf.size() / 2) {
    Buf.erase(0, Off);
    Off = 0;
  }
}

FrameDecoder::Result FrameDecoder::next(Frame &Out, std::string &Error) {
  if (Poisoned) {
    Error = PoisonError;
    return Result::Malformed;
  }
  size_t Have = Buf.size() - Off;
  if (Have < 5)
    return Result::NeedMore;
  const unsigned char *P =
      reinterpret_cast<const unsigned char *>(Buf.data()) + Off;
  uint32_t Len = static_cast<uint32_t>(P[0]) << 24 |
                 static_cast<uint32_t>(P[1]) << 16 |
                 static_cast<uint32_t>(P[2]) << 8 | static_cast<uint32_t>(P[3]);
  char Tag = static_cast<char>(P[4]);
  if (Len > MaxFramePayload) {
    Poisoned = true;
    PoisonError = formatString("frame length %u exceeds the %zu-byte limit",
                               Len, MaxFramePayload);
    Error = PoisonError;
    return Result::Malformed;
  }
  if (!knownType(Tag)) {
    Poisoned = true;
    PoisonError = formatString("unknown frame type 0x%02x",
                               static_cast<unsigned>(P[4]));
    Error = PoisonError;
    return Result::Malformed;
  }
  if (Have < 5 + static_cast<size_t>(Len))
    return Result::NeedMore;
  Out.Type = static_cast<FrameType>(Tag);
  Out.Payload.assign(Buf, Off + 5, Len);
  Off += 5 + static_cast<size_t>(Len);
  return Result::Ready;
}
