//===- server/Framing.h - rvpredictd wire protocol --------------*- C++ -*-===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The daemon's framed protocol (docs/SERVER.md): every message is a
// 4-byte big-endian payload length, a 1-byte type tag, then the payload.
//
//   client -> server   H  HELLO    "key=value" lines of session options
//                      D  DATA     a chunk of trace text (may split lines)
//                      F  FIN      end of input, request the summary
//   server -> client   W  WELCOME  protocol banner
//                      R  REPORT   one analyzed window's delta
//                      S  SUMMARY  cumulative batch-identical report
//                      E  ERROR    one-line diagnostic; session is dead
//
// Decoding is strict: an unknown type tag or a length above
// MaxFramePayload poisons the decoder permanently — the daemon answers
// with one ERROR frame and tears down that session (never the server).
// The `net.frame_garble` fault site corrupts one received byte inside
// feed(), upstream of all validation, so the fault drills exercise the
// same rejection path a hostile client would hit.
//
//===----------------------------------------------------------------------===//

#ifndef RVP_SERVER_FRAMING_H
#define RVP_SERVER_FRAMING_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace rvp {

enum class FrameType : char {
  Hello = 'H',
  Data = 'D',
  Fin = 'F',
  Welcome = 'W',
  Report = 'R',
  Summary = 'S',
  Error = 'E',
};

/// Frames above this are rejected as malformed (a DATA chunk never needs
/// to be this large — clients split their trace into smaller frames).
constexpr size_t MaxFramePayload = 1u << 20;

struct Frame {
  FrameType Type = FrameType::Error;
  std::string Payload;
};

/// Length + tag + payload, ready to write to the socket.
std::string encodeFrame(FrameType Type, std::string_view Payload);

/// Incremental decoder over a byte stream; frames may arrive split or
/// coalesced arbitrarily.
class FrameDecoder {
public:
  enum class Result : uint8_t {
    Ready,    ///< a complete frame was produced
    NeedMore, ///< not enough buffered bytes yet
    Malformed ///< protocol violation; the decoder stays poisoned
  };

  /// Appends received bytes. The `net.frame_garble` fault site flips one
  /// byte of \p Bytes here.
  void feed(std::string_view Bytes);

  /// Extracts the next complete frame. After Malformed every further call
  /// returns Malformed with the same diagnostic.
  Result next(Frame &Out, std::string &Error);

  /// True while a frame is partially buffered — the stall-timeout
  /// criterion: a client sitting mid-frame is stalled, one sitting
  /// between frames is merely idle.
  bool midFrame() const { return !Poisoned && Buf.size() - Off > 0; }

private:
  std::string Buf;
  size_t Off = 0; ///< consumed prefix of Buf
  bool Poisoned = false;
  std::string PoisonError;
};

} // namespace rvp

#endif // RVP_SERVER_FRAMING_H
