//===- tools/rvpredictd.cpp - Trace-ingest daemon -----------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The long-running ingest daemon (docs/SERVER.md): accepts trace streams
/// from many concurrent clients over a Unix-domain socket (and optionally
/// TCP on 127.0.0.1), analyzes them window by window on a shared worker
/// pool, and streams per-window REPORT frames plus a batch-identical
/// SUMMARY back to each client.
///
///   rvpredictd [--socket=/tmp/rvp.sock] [--port=N] [--jobs=N]
///              [--max-sessions=N] [--max-queued-windows=N]
///              [--high-watermark=BYTES] [--low-watermark=BYTES]
///              [--degrade-threshold=N] [--window-deadline=S]
///              [--idle-timeout=S] [--stall-timeout=S]
///              [--drain-timeout=S] [--checkpoint-root=DIR]
///              [--technique=rv|said|cp|hb] [--property=race|...]
///              [--window=N] [--tier=vc|smt|hybrid] [--budget=S]
///              [--solver=idl|z3] [--retry-budgets=50ms,250ms,1s]
///              [--skip-bad-events] [--stats] [--stats-json=-]
///              [--inject-faults=spec]
///
/// The --technique/--property/... flags are session *defaults*; each
/// client's HELLO frame may override them per session. SIGTERM and SIGINT
/// begin a clean drain: stop accepting, finish every queued window, send
/// each session its SUMMARY, exit 0.
///
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"
#include "detect/Resilience.h"
#include "server/Server.h"
#include "support/CommandLine.h"
#include "support/FaultInjector.h"
#include "support/Stats.h"
#include "support/Telemetry.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace rvp;

namespace {

Server *GServer = nullptr;

void onSignal(int) {
  if (GServer)
    GServer->requestStop(); // async-signal-safe: flag + self-pipe write
}

bool parseTechnique(const std::string &Name, Technique &Out) {
  if (Name == "hb")
    Out = Technique::Hb;
  else if (Name == "cp")
    Out = Technique::Cp;
  else if (Name == "said")
    Out = Technique::Said;
  else if (Name == "rv")
    Out = Technique::Maximal;
  else
    return false;
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Options(
      "rvpredictd: multi-client trace-ingest daemon (docs/SERVER.md)");
  Options.addOption("socket", "Unix-domain socket path to listen on", "");
  Options.addOption("port",
                    "also listen on this TCP port on 127.0.0.1 "
                    "(0 = unix socket only)",
                    "0");
  Options.addOption("jobs",
                    "analysis worker threads (0 = one per hardware thread)",
                    "1");
  Options.addOption("max-sessions", "concurrent session budget", "32");
  Options.addOption("max-queued-windows",
                    "pending windows per session before its socket reads "
                    "pause",
                    "8");
  Options.addOption("high-watermark",
                    "buffered ingest bytes per session before reads pause",
                    "1048576");
  Options.addOption("low-watermark",
                    "buffered ingest bytes at which paused reads resume",
                    "65536");
  Options.addOption("degrade-threshold",
                    "pending windows across all sessions beyond which new "
                    "race windows are shed to the WCP tier (0 = never)",
                    "0");
  Options.addOption("window-deadline",
                    "per-window solve deadline in seconds, capping every "
                    "session's --budget (0 = no cap)",
                    "0");
  Options.addOption("idle-timeout",
                    "seconds a drained session may sit idle between frames "
                    "before it is closed (0 = never)",
                    "0");
  Options.addOption("stall-timeout",
                    "seconds a session may stall mid-frame before it is "
                    "closed (0 = never)",
                    "0");
  Options.addOption("drain-timeout",
                    "seconds a SIGTERM drain may run before remaining "
                    "sessions are dropped (0 = wait forever)",
                    "60");
  Options.addOption("checkpoint-root",
                    "directory for per-session crash-recovery checkpoints; "
                    "clients opt in with ckpt=<key> in HELLO",
                    "");
  // Session defaults — HELLO key=value options override these per client.
  Options.addOption("technique", "default technique (rv, said, cp, hb)",
                    "rv");
  Options.addOption("property",
                    "default property (race, atomicity, deadlock)", "race");
  Options.addOption("window", "default window size in events", "10000");
  Options.addOption("tier", "default race tier (vc, smt, hybrid)", "hybrid");
  Options.addOption("budget", "default per-COP solver budget (s)", "60");
  Options.addOption("solver", "solver backend: idl or z3", "idl");
  Options.addOption("retry-budgets",
                    "escalating per-COP retry budgets for unknown results, "
                    "e.g. 50ms,250ms,1s (empty = no retries)",
                    "");
  Options.addOption("skip-bad-events",
                    "default: skip malformed trace lines instead of "
                    "failing the session",
                    "false");
  Options.addOption("stats", "print server counters on exit", "false");
  Options.addOption("stats-json",
                    "write server counters as JSON on exit ('-' for "
                    "stdout)",
                    "");
  Options.addOption("inject-faults",
                    "deterministic fault injection spec, e.g. "
                    "'seed=7,net.frame_garble=3' (also read from RV_FAULTS)",
                    "");
  if (!Options.parse(Argc, Argv))
    return ExitUsage;

  std::string FaultSpec = Options.getString("inject-faults", "");
  if (FaultSpec.empty())
    if (const char *Env = std::getenv("RV_FAULTS"))
      FaultSpec = Env;
  if (!FaultSpec.empty()) {
    std::string FaultError;
    if (!FaultInjector::configure(FaultSpec, FaultError)) {
      std::fprintf(stderr, "error: bad --inject-faults spec: %s\n",
                   FaultError.c_str());
      return ExitUsage;
    }
  }

  ServerOptions SO;
  SO.SocketPath = Options.getString("socket", "");
  SO.TcpPort = static_cast<int>(Options.getInt("port", 0));
  if (SO.SocketPath.empty() && SO.TcpPort == 0) {
    std::fprintf(stderr,
                 "error: rvpredictd needs a listener; pass --socket=PATH "
                 "and/or --port=N\n");
    return ExitUsage;
  }
  if (Options.hasOption("jobs") && Options.getInt("jobs", 1) < 0) {
    std::fprintf(stderr, "error: --jobs must be >= 0\n");
    return ExitUsage;
  }
  SO.Jobs = static_cast<unsigned>(Options.getInt("jobs", 1));
  SO.MaxSessions = static_cast<unsigned>(Options.getInt("max-sessions", 32));
  if (SO.MaxSessions == 0) {
    std::fprintf(stderr, "error: --max-sessions must be >= 1\n");
    return ExitUsage;
  }
  SO.MaxQueuedWindows =
      static_cast<unsigned>(Options.getInt("max-queued-windows", 8));
  SO.HighWatermark =
      static_cast<size_t>(Options.getInt("high-watermark", 1 << 20));
  SO.LowWatermark =
      static_cast<size_t>(Options.getInt("low-watermark", 64 << 10));
  if (SO.LowWatermark > SO.HighWatermark) {
    std::fprintf(stderr,
                 "error: --low-watermark (%zu) must not exceed "
                 "--high-watermark (%zu)\n",
                 SO.LowWatermark, SO.HighWatermark);
    return ExitUsage;
  }
  SO.DegradeThreshold =
      static_cast<unsigned>(Options.getInt("degrade-threshold", 0));
  SO.WindowDeadlineSeconds = Options.getDouble("window-deadline", 0);
  SO.IdleTimeoutSeconds = Options.getDouble("idle-timeout", 0);
  SO.StallTimeoutSeconds = Options.getDouble("stall-timeout", 0);
  SO.DrainTimeoutSeconds = Options.getDouble("drain-timeout", 60);
  SO.CheckpointRoot = Options.getString("checkpoint-root", "");

  // Session defaults. The same combination rules the batch CLI enforces
  // apply here; a bad default is a usage error, a bad HELLO override is a
  // per-session ERROR frame (the daemon never exits for a client's sake).
  StreamOptions &St = SO.Stream;
  const std::string PropertyName = Options.getString("property", "race");
  if (!parseStreamProperty(PropertyName, St.Property)) {
    std::fprintf(stderr,
                 "error: --property must be race, atomicity, or deadlock "
                 "(got '%s')\n",
                 PropertyName.c_str());
    return ExitUsage;
  }
  const std::string TechName = Options.getString("technique", "rv");
  if (!parseTechnique(TechName, St.Tech)) {
    std::fprintf(stderr,
                 "error: --technique must be rv, said, cp, or hb (got "
                 "'%s')\n",
                 TechName.c_str());
    return ExitUsage;
  }
  const std::string TierName = Options.getString("tier", "hybrid");
  if (TierName == "vc")
    St.Detect.Tier = DetectTier::Vc;
  else if (TierName == "smt")
    St.Detect.Tier = DetectTier::Smt;
  else if (TierName == "hybrid")
    St.Detect.Tier = DetectTier::Hybrid;
  else {
    std::fprintf(stderr,
                 "error: --tier must be vc, smt, or hybrid (got '%s')\n",
                 TierName.c_str());
    return ExitUsage;
  }
  if (St.Detect.Tier == DetectTier::Vc &&
      (PropertyName != "race" || (TechName != "rv" && TechName != "said"))) {
    std::fprintf(stderr,
                 "error: --tier=vc covers races under --technique=rv or "
                 "said only\n");
    return ExitUsage;
  }
  if (Options.getInt("window", 10000) <= 0) {
    std::fprintf(stderr, "error: --window must be a positive event count\n");
    return ExitUsage;
  }
  St.Detect.WindowSize =
      static_cast<uint32_t>(Options.getInt("window", 10000));
  if (Options.getDouble("budget", 60) <= 0) {
    std::fprintf(stderr, "error: --budget must be positive\n");
    return ExitUsage;
  }
  St.Detect.PerCopBudgetSeconds = Options.getDouble("budget", 60);
  St.Detect.SolverName = Options.getString("solver", "idl");
  {
    std::string BudgetError;
    if (!parseBudgetList(Options.getString("retry-budgets", ""),
                         St.Detect.RetryBudgets, BudgetError)) {
      std::fprintf(stderr, "error: --retry-budgets: %s\n",
                   BudgetError.c_str());
      return ExitUsage;
    }
  }
  St.Detect.CheckTiers = false;
  St.Detect.Jobs = 1; // parallelism comes from the session pool
  St.Detect.CollectWitnesses = St.Detect.Tier != DetectTier::Vc;
  St.Parse.SkipBadEvents = Options.getBool("skip-bad-events");
  St.Render.VcTier = St.Detect.Tier == DetectTier::Vc;
  St.Render.WitnessTag =
      St.Tech == Technique::Maximal && St.Detect.CollectWitnesses;
  St.Render.WitnessEvents = false;

  const bool Stats = Options.getBool("stats");
  const std::string StatsJsonPath = Options.getString("stats-json", "");
  if (Stats || !StatsJsonPath.empty()) {
    Telemetry::setEnabled(true);
    Telemetry::instance().reset();
  }

  Server S(SO);
  std::string Error;
  if (!S.start(Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return ExitUsage;
  }
  GServer = &S;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN); // torn clients surface as write errors
  if (!SO.SocketPath.empty())
    std::fprintf(stderr, "rvpredictd: listening on %s\n",
                 SO.SocketPath.c_str());
  if (SO.TcpPort)
    std::fprintf(stderr, "rvpredictd: listening on 127.0.0.1:%d\n",
                 SO.TcpPort);

  int Rc = S.run();
  GServer = nullptr;

  if (Stats || !StatsJsonPath.empty()) {
    MetricsSnapshot Snapshot = MetricsRegistry::global().snapshot();
    if (Stats)
      for (const auto &C : Snapshot.Counters)
        std::fprintf(stderr, "%-32s %llu\n", C.first.c_str(),
                     static_cast<unsigned long long>(C.second));
    if (!StatsJsonPath.empty()) {
      std::string Json = metricsToJson(Snapshot);
      if (StatsJsonPath == "-") {
        std::fputs("##rvp:stats-json\n", stdout);
        std::fputs(Json.c_str(), stdout);
        std::fputc('\n', stdout);
      } else {
        std::ofstream File(StatsJsonPath);
        if (!File) {
          std::fprintf(stderr, "error: cannot write '%s'\n",
                       StatsJsonPath.c_str());
          return ExitInternal;
        }
        File << Json << '\n';
      }
    }
  }
  return Rc;
}
