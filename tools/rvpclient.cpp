//===- tools/rvpclient.cpp - rvpredictd load-test client ----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Streams a trace to a running rvpredictd and prints what comes back —
/// the ServerGolden harness and the fault drills drive the daemon through
/// this tool (docs/SERVER.md).
///
///   rvpclient <trace.txt|bench:NAME> --socket=/tmp/rvp.sock [--port=N]
///             [--technique=rv|said|cp|hb] [--property=race|...]
///             [--window=N] [--tier=vc|smt|hybrid] [--budget=S]
///             [--skip-bad-events] [--ckpt=KEY]
///             [--chunk=BYTES] [--delay-ms=N] [--connections=N]
///             [--summary-only] [--expect=FILE] [--stall-ms=N]
///             [--inject-faults=spec]
///
/// Each connection sends HELLO, the trace text as DATA frames of --chunk
/// bytes (sleeping --delay-ms between chunks to model a slow producer),
/// then FIN, and reads frames until the SUMMARY arrives. REPORT payloads
/// print as they stream in (suppressed by --summary-only, which golden
/// byte-compares need). --connections=N replays the same trace over N
/// concurrent connections; with N > 1 every printed line is prefixed with
/// its connection index.
///
/// The `net.client_stall` fault site makes a connection write only half of
/// one DATA frame and then sleep --stall-ms before continuing — the
/// mid-frame stall the daemon's --stall-timeout is meant to reap.
///
/// Exit codes: 0 = every connection got its SUMMARY; 2 = usage errors;
/// 3 = a connection failed (ERROR frame, refused, or torn socket).
///
//===----------------------------------------------------------------------===//

#include "server/Framing.h"
#include "support/CommandLine.h"
#include "support/FaultInjector.h"
#include "trace/TraceIO.h"
#include "workloads/Catalog.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace rvp;

namespace {

std::mutex OutMutex;

/// Prints one frame payload, line by line, under the output lock; \p Tag
/// prefixes each line when multiple connections interleave.
void printPayload(const std::string &Tag, std::string_view Payload,
                  std::FILE *To) {
  std::lock_guard<std::mutex> Lock(OutMutex);
  size_t Pos = 0;
  while (Pos < Payload.size()) {
    size_t Nl = Payload.find('\n', Pos);
    size_t End = Nl == std::string_view::npos ? Payload.size() : Nl;
    if (!Tag.empty())
      std::fputs(Tag.c_str(), To);
    std::fwrite(Payload.data() + Pos, 1, End - Pos, To);
    std::fputc('\n', To);
    Pos = End + 1;
  }
}

int connectTo(const std::string &SocketPath, int Port, std::string &Error) {
  if (!SocketPath.empty()) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (SocketPath.size() >= sizeof(Addr.sun_path)) {
      Error = "socket path too long";
      ::close(Fd);
      return -1;
    }
    std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0) {
      Error = "connect " + SocketPath + ": " + std::strerror(errno);
      ::close(Fd);
      return -1;
    }
    return Fd;
  }
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "connect 127.0.0.1:" + std::to_string(Port) + ": " +
            std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool writeAll(int Fd, const char *Data, size_t Len, std::string &Error) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::write(Fd, Data + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

struct ClientConfig {
  std::string SocketPath;
  int Port = 0;
  std::string Hello;
  std::string TraceText;
  size_t Chunk = 64 << 10;
  unsigned DelayMs = 0;
  unsigned StallMs = 2000;
  bool SummaryOnly = false;
  std::string Tag; ///< line prefix, e.g. "conn2: " (empty for 1 connection)
};

/// Drains whatever the server has sent so far without blocking; returns
/// false once the session is over (SUMMARY or ERROR seen, or the decoder
/// rejected a server frame). \p Summary accumulates the SUMMARY payload.
bool pumpFrames(FrameDecoder &Decoder, const ClientConfig &Cfg,
                std::string &Summary, bool &GotSummary, bool &Failed) {
  for (;;) {
    Frame F;
    std::string Error;
    FrameDecoder::Result R = Decoder.next(F, Error);
    if (R == FrameDecoder::Result::NeedMore)
      return true;
    if (R == FrameDecoder::Result::Malformed) {
      printPayload(Cfg.Tag, "error: bad server frame: " + Error, stderr);
      Failed = true;
      return false;
    }
    switch (F.Type) {
    case FrameType::Welcome:
      break; // banner; nothing to print
    case FrameType::Report:
      if (!Cfg.SummaryOnly)
        printPayload(Cfg.Tag, F.Payload, stdout);
      break;
    case FrameType::Summary:
      Summary = F.Payload;
      GotSummary = true;
      return false;
    case FrameType::Error:
      printPayload(Cfg.Tag, "server error: " + F.Payload, stderr);
      Failed = true;
      return false;
    default:
      printPayload(Cfg.Tag, "error: unexpected frame from server", stderr);
      Failed = true;
      return false;
    }
  }
}

/// One connection's whole life: connect, HELLO, stream, FIN, await
/// SUMMARY. Returns true when the summary arrived; \p SummaryOut gets it.
bool runConnection(const ClientConfig &Cfg, std::string &SummaryOut) {
  std::string Error;
  int Fd = connectTo(Cfg.SocketPath, Cfg.Port, Error);
  if (Fd < 0) {
    printPayload(Cfg.Tag, "error: " + Error, stderr);
    return false;
  }
  FrameDecoder Decoder;
  std::string Summary;
  bool GotSummary = false, Failed = false;

  auto ReadAvailable = [&](int TimeoutMs) -> bool {
    pollfd P{Fd, POLLIN, 0};
    int N = ::poll(&P, 1, TimeoutMs);
    if (N <= 0)
      return true; // nothing to read (or EINTR); not an error
    char Buf[16384];
    ssize_t Got = ::read(Fd, Buf, sizeof(Buf));
    if (Got < 0)
      return errno == EINTR || errno == EAGAIN;
    if (Got == 0) {
      if (!GotSummary && !Failed) {
        printPayload(Cfg.Tag, "error: server closed the connection", stderr);
        Failed = true;
      }
      return false;
    }
    Decoder.feed(std::string_view(Buf, static_cast<size_t>(Got)));
    return pumpFrames(Decoder, Cfg, Summary, GotSummary, Failed);
  };

  auto Send = [&](FrameType Type, std::string_view Payload) -> bool {
    std::string Wire = encodeFrame(Type, Payload);
    // The client-side stall drill: tear the frame in half on the wire and
    // go quiet, leaving the server's decoder mid-frame.
    if (Type == FrameType::Data &&
        FaultInjector::shouldFail(faults::NetClientStall)) {
      size_t Half = Wire.size() / 2;
      if (!writeAll(Fd, Wire.data(), Half, Error))
        return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(Cfg.StallMs));
      return writeAll(Fd, Wire.data() + Half, Wire.size() - Half, Error);
    }
    return writeAll(Fd, Wire.data(), Wire.size(), Error);
  };

  bool Alive = true;
  std::string WriteError;
  if (!Send(FrameType::Hello, Cfg.Hello)) {
    WriteError = Error;
    Alive = false;
  }
  for (size_t Off = 0; Alive && Off < Cfg.TraceText.size();
       Off += Cfg.Chunk) {
    size_t Len = std::min(Cfg.Chunk, Cfg.TraceText.size() - Off);
    if (!Send(FrameType::Data,
              std::string_view(Cfg.TraceText).substr(Off, Len))) {
      WriteError = Error;
      Alive = false;
      break;
    }
    // Interleave reads so REPORT frames print as the analysis streams
    // them, and a long upload cannot pile the server's replies up.
    if (!ReadAvailable(0))
      Alive = false;
    if (Cfg.DelayMs)
      std::this_thread::sleep_for(std::chrono::milliseconds(Cfg.DelayMs));
  }
  if (Alive && !Send(FrameType::Fin, "")) {
    WriteError = Error;
    Alive = false;
  }
  while (Alive && !GotSummary && !Failed)
    Alive = ReadAvailable(-1);
  // A torn write usually means the daemon already answered and hung up —
  // refused the session, errored it, or drained on SIGTERM mid-upload.
  // The verdict frame is still in the socket buffer; drain briefly so the
  // user sees the ERROR (or SUMMARY) instead of just EPIPE.
  if (!WriteError.empty()) {
    auto Deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (!GotSummary && !Failed &&
           std::chrono::steady_clock::now() < Deadline)
      if (!ReadAvailable(100))
        break;
    if (!GotSummary && !Failed) {
      printPayload(Cfg.Tag, "error: " + WriteError, stderr);
      Failed = true;
    }
  }
  ::close(Fd);
  if (GotSummary) {
    printPayload(Cfg.Tag, Summary, stdout);
    SummaryOut = Summary;
  }
  return GotSummary && !Failed;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Options(
      "rvpclient: stream a trace to rvpredictd (docs/SERVER.md)");
  Options.addOption("socket", "daemon's Unix-domain socket path", "");
  Options.addOption("port", "daemon's TCP port on 127.0.0.1", "0");
  Options.addOption("technique", "technique for HELLO (rv, said, cp, hb)",
                    "");
  Options.addOption("property", "property for HELLO (race, atomicity, "
                                "deadlock)",
                    "");
  Options.addOption("window", "window size for HELLO", "");
  Options.addOption("tier", "race tier for HELLO (vc, smt, hybrid)", "");
  Options.addOption("budget", "per-COP solver budget for HELLO (s)", "");
  Options.addOption("skip-bad-events",
                    "ask the daemon to skip malformed trace lines", "false");
  Options.addOption("ckpt",
                    "crash-recovery checkpoint key for HELLO (daemon must "
                    "run with --checkpoint-root)",
                    "");
  Options.addOption("chunk", "DATA frame payload size in bytes", "65536");
  Options.addOption("delay-ms", "sleep between DATA frames", "0");
  Options.addOption("stall-ms",
                    "how long the net.client_stall fault sleeps mid-frame",
                    "2000");
  Options.addOption("connections",
                    "stream the trace over N concurrent connections", "1");
  Options.addOption("summary-only",
                    "print only the SUMMARY payload (golden byte-compares)",
                    "false");
  Options.addOption("expect",
                    "file the SUMMARY payload must match byte for byte",
                    "");
  Options.addOption("seed", "recording seed for .rv inputs", "1");
  Options.addOption("schedule", "recording schedule for .rv inputs", "rr");
  Options.addOption("inject-faults",
                    "deterministic fault injection spec, e.g. "
                    "'seed=7,net.client_stall' (also read from RV_FAULTS)",
                    "");
  if (!Options.parse(Argc, Argv))
    return ExitUsage;
  if (Options.positional().empty()) {
    std::fprintf(stderr, "usage: rvpclient <trace.txt|bench:NAME> "
                         "--socket=PATH|--port=N\n");
    return ExitUsage;
  }
  std::string FaultSpec = Options.getString("inject-faults", "");
  if (FaultSpec.empty())
    if (const char *Env = std::getenv("RV_FAULTS"))
      FaultSpec = Env;
  if (!FaultSpec.empty()) {
    std::string FaultError;
    if (!FaultInjector::configure(FaultSpec, FaultError)) {
      std::fprintf(stderr, "error: bad --inject-faults spec: %s\n",
                   FaultError.c_str());
      return ExitUsage;
    }
  }

  ClientConfig Cfg;
  Cfg.SocketPath = Options.getString("socket", "");
  Cfg.Port = static_cast<int>(Options.getInt("port", 0));
  if (Cfg.SocketPath.empty() && Cfg.Port == 0) {
    std::fprintf(stderr,
                 "error: pass --socket=PATH or --port=N to reach the "
                 "daemon\n");
    return ExitUsage;
  }
  Cfg.Chunk = static_cast<size_t>(Options.getInt("chunk", 64 << 10));
  if (Cfg.Chunk == 0 || Cfg.Chunk > MaxFramePayload) {
    std::fprintf(stderr, "error: --chunk must be in [1, %zu]\n",
                 MaxFramePayload);
    return ExitUsage;
  }
  Cfg.DelayMs = static_cast<unsigned>(Options.getInt("delay-ms", 0));
  Cfg.StallMs = static_cast<unsigned>(Options.getInt("stall-ms", 2000));
  Cfg.SummaryOnly = Options.getBool("summary-only");

  // The trace: a text trace file, or a catalog row rendered to text — the
  // same bytes `rvpredict detect` would analyze, so summaries byte-match.
  const std::string &Input = Options.positional()[0];
  if (Input.rfind("bench:", 0) == 0) {
    std::optional<BenchmarkCase> Case = findBenchmark(Input.substr(6));
    if (!Case) {
      std::fprintf(stderr, "error: unknown benchmark '%s'\n",
                   Input.substr(6).c_str());
      return ExitUsage;
    }
    Trace T;
    std::string Error;
    if (!benchmarkTrace(*Case, T, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return ExitUsage;
    }
    Cfg.TraceText = writeTraceText(T);
  } else if (!readFile(Input, Cfg.TraceText)) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Input.c_str());
    return ExitUsage;
  }

  // HELLO carries only the options the user set; the daemon's defaults
  // cover the rest.
  std::string Hello;
  auto AddOpt = [&](const char *Key, const std::string &Value) {
    if (!Value.empty())
      Hello += std::string(Key) + "=" + Value + "\n";
  };
  AddOpt("property", Options.getString("property", ""));
  AddOpt("technique", Options.getString("technique", ""));
  AddOpt("tier", Options.getString("tier", ""));
  AddOpt("window", Options.getString("window", ""));
  AddOpt("budget", Options.getString("budget", ""));
  if (Options.getBool("skip-bad-events"))
    Hello += "skip-bad-events=true\n";
  AddOpt("ckpt", Options.getString("ckpt", ""));
  Cfg.Hello = Hello;

  std::signal(SIGPIPE, SIG_IGN);

  unsigned Connections =
      static_cast<unsigned>(Options.getInt("connections", 1));
  if (Connections == 0) {
    std::fprintf(stderr, "error: --connections must be >= 1\n");
    return ExitUsage;
  }
  std::atomic<unsigned> Failures{0};
  std::string FirstSummary;
  if (Connections == 1) {
    if (!runConnection(Cfg, FirstSummary))
      Failures = 1;
  } else {
    std::vector<std::thread> Threads;
    std::vector<std::string> Summaries(Connections);
    for (unsigned I = 0; I < Connections; ++I)
      Threads.emplace_back([&, I] {
        ClientConfig Mine = Cfg;
        Mine.Tag = "conn" + std::to_string(I + 1) + ": ";
        if (!runConnection(Mine, Summaries[I]))
          ++Failures;
      });
    for (std::thread &T : Threads)
      T.join();
    FirstSummary = Summaries.empty() ? std::string() : Summaries[0];
  }

  std::string ExpectPath = Options.getString("expect", "");
  if (!ExpectPath.empty()) {
    std::string Expected;
    if (!readFile(ExpectPath, Expected)) {
      std::fprintf(stderr, "error: cannot open '%s'\n", ExpectPath.c_str());
      return ExitUsage;
    }
    if (Expected != FirstSummary) {
      std::fprintf(stderr,
                   "error: SUMMARY differs from '%s' (%zu vs %zu bytes)\n",
                   ExpectPath.c_str(), FirstSummary.size(), Expected.size());
      return ExitInternal;
    }
  }
  return Failures ? ExitInternal : ExitSuccess;
}
