//===- tools/rvpredict.cpp - Command-line driver ------------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The end-user tool: record MiniRV executions, predict races from traces,
/// and replay witnesses.
///
///   rvpredict record  <prog.rv> [--seed=N] [--schedule=rr|random]
///                     [--out=trace.txt]
///   rvpredict detect  <trace.txt|prog.rv> [--technique=rv|said|cp|hb]
///                     [--property=race|atomicity|deadlock] [--window=N]
///                     [--tier=vc|smt|hybrid] [--check-tiers]
///                     [--solver=idl|z3] [--budget=S] [--witness] [--stats]
///                     [--stats-json=out.json] [--trace-events=events.jsonl]
///                     [--profile=out.trace.json]
///                     [--retry-budgets=50ms,250ms,1s] [--checkpoint=dir]
///                     [--skip-bad-events] [--inject-faults=spec]
///   rvpredict replay  <prog.rv> --trace=trace.txt
///                     (re-runs the program following the trace's schedule)
///   rvpredict fuzz    [--seed=N]   (prints a random program)
///
/// Inputs ending in `.rv` are treated as MiniRV programs (recorded on the
/// fly); anything else is parsed as a trace in the text format.
///
/// Exit codes (see docs/ROBUSTNESS.md): 0 = clean run, nothing found;
/// 1 = the analysis found races / violations / deadlocks; 2 = usage errors
/// (bad flags, malformed values, unreadable inputs); 3 = internal errors
/// or a degraded run that left COPs undecided (an `unknown` section).
///
//===----------------------------------------------------------------------===//

#include "analysis/StaticPrune.h"
#include "detect/Atomicity.h"
#include "detect/Checkpoint.h"
#include "detect/Deadlock.h"
#include "detect/Detect.h"
#include "detect/Report.h"
#include "detect/Resilience.h"
#include "lang/Parser.h"
#include "runtime/Interpreter.h"
#include "support/CommandLine.h"
#include "support/FaultInjector.h"
#include "support/Profile.h"
#include "support/StringUtils.h"
#include "trace/Consistency.h"
#include "trace/TraceIO.h"
#include "workloads/Catalog.h"
#include "workloads/Fuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

using namespace rvp;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  // Injected read failures (docs/ROBUSTNESS.md): a short read truncates
  // the content mid-stream, a garble corrupts one byte in the middle.
  // Both surface downstream as parse diagnostics, never as crashes.
  if (FaultInjector::shouldFail(faults::TraceShortRead))
    Out.resize(Out.size() / 2);
  if (FaultInjector::shouldFail(faults::TraceGarble) && !Out.empty())
    Out[Out.size() / 2] = '\x01';
  return true;
}

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

/// Loads a trace from a program (recording it), a trace file, or a
/// catalog row (`bench:<name>`, e.g. `bench:highcop` — see
/// workloads/Catalog.h). When the input was a MiniRV program, \p
/// SourceOut (if non-null) receives its text, so callers can re-analyze
/// the program statically.
bool loadTrace(const std::string &Path, const OptionParser &Options,
               Trace &T, std::string *SourceOut = nullptr) {
  if (Path.rfind("bench:", 0) == 0) {
    std::string Name = Path.substr(6);
    std::optional<BenchmarkCase> Case = findBenchmark(Name);
    if (!Case) {
      std::fprintf(stderr, "error: unknown benchmark '%s'\n", Name.c_str());
      return false;
    }
    std::string Error;
    if (!benchmarkTrace(*Case, T, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return false;
    }
    if (SourceOut && Case->CaseKind == BenchmarkCase::Kind::Program)
      *SourceOut = Case->Source;
    return true;
  }
  std::string Content;
  if (!readFile(Path, Content)) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  if (endsWith(Path, ".rv")) {
    if (SourceOut)
      *SourceOut = Content;
    RunResult Run;
    std::string Error;
    uint64_t Seed = Options.getInt("seed", 1);
    RoundRobinScheduler RoundRobin(3);
    RandomScheduler Random(Seed);
    std::string Schedule = Options.getString("schedule", "random");
    Scheduler *S = nullptr;
    if (Schedule == "rr")
      S = &RoundRobin;
    else if (Schedule == "random")
      S = &Random;
    else {
      std::fprintf(stderr,
                   "error: unknown --schedule value '%s' "
                   "(valid values: rr, random)\n",
                   Schedule.c_str());
      return false;
    }
    if (!recordTrace(Content, T, Run, Error, S)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return false;
    }
    if (Run.Deadlocked)
      std::fprintf(stderr, "warning: the recorded execution deadlocked\n");
    return true;
  }
  std::string Error;
  TraceParseOptions ParseOpts;
  ParseOpts.FileName = Path;
  ParseOpts.SkipBadEvents = Options.getBool("skip-bad-events");
  TraceParseStats ParseStats;
  auto Parsed = parseTraceText(Content, Error, ParseOpts, &ParseStats);
  if (!Parsed) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return false;
  }
  if (ParseStats.SkippedEvents) {
    std::fprintf(stderr,
                 "note: skipped %llu malformed or inconsistent event "
                 "line(s) in '%s'\n",
                 static_cast<unsigned long long>(ParseStats.SkippedEvents),
                 Path.c_str());
    if (Telemetry::enabled())
      MetricsRegistry::global()
          .counter("trace.skipped_events")
          .add(ParseStats.SkippedEvents);
  }
  T = std::move(*Parsed);
  return true;
}

int cmdRecord(const OptionParser &Options) {
  if (Options.positional().size() < 2) {
    std::fprintf(stderr, "usage: rvpredict record <prog.rv>\n");
    return 1;
  }
  Trace T;
  if (!loadTrace(Options.positional()[1], Options, T))
    return 1;
  std::string Text = writeTraceText(T);
  std::string Out = Options.getString("out", "");
  if (Out.empty()) {
    std::fputs(Text.c_str(), stdout);
    return 0;
  }
  std::ofstream File(Out);
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Out.c_str());
    return 1;
  }
  File << Text;
  std::printf("wrote %llu events to %s\n",
              static_cast<unsigned long long>(T.size()), Out.c_str());
  return 0;
}

Technique parseTechnique(const std::string &Name) {
  if (Name == "hb")
    return Technique::Hb;
  if (Name == "cp")
    return Technique::Cp;
  if (Name == "said")
    return Technique::Said;
  return Technique::Maximal;
}

/// Writes \p Json (plus a trailing newline) to \p Path; "-" means stdout.
/// On stdout the object is preceded by a `##rvp:stats-json` marker line so
/// consumers can split the combined stream — detect's stdout is always
/// report, then stats table, then this block, then the `##rvp:trace-events`
/// block (docs/OBSERVABILITY.md).
bool writeJsonOutput(const std::string &Path, const std::string &Json) {
  if (Path == "-") {
    std::fputs("##rvp:stats-json\n", stdout);
    std::fputs(Json.c_str(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return false;
  }
  File << Json << '\n';
  return true;
}

int cmdDetect(const OptionParser &Options) {
  if (Options.positional().size() < 2) {
    std::fprintf(stderr, "usage: rvpredict detect <trace.txt|prog.rv>\n");
    return ExitUsage;
  }

  // Flag validation up front: every malformed value is a usage error
  // (exit 2), diagnosed before any work starts.
  if (Options.hasOption("jobs") && Options.getInt("jobs", 0) == 0) {
    std::fprintf(stderr,
                 "error: explicit --jobs=0 is invalid; pass --jobs=N "
                 "(N >= 1) or omit the flag for one worker per hardware "
                 "thread\n");
    return ExitUsage;
  }
  if (Options.getInt("window", 10000) <= 0) {
    std::fprintf(stderr,
                 "error: --window must be a positive event count (got "
                 "%lld)\n",
                 static_cast<long long>(Options.getInt("window", 10000)));
    return ExitUsage;
  }
  std::vector<double> RetryBudgets;
  {
    std::string BudgetError;
    if (!parseBudgetList(Options.getString("retry-budgets", ""),
                         RetryBudgets, BudgetError)) {
      std::fprintf(stderr, "error: --retry-budgets: %s\n",
                   BudgetError.c_str());
      return ExitUsage;
    }
  }
  // Tier selection and its combination rules (docs/TIERS.md): the WCP
  // vector-clock tier covers races under the solver-backed techniques
  // only, and --check-tiers is meaningful exactly when both tiers run.
  const std::string TierName = Options.getString("tier", "hybrid");
  DetectTier Tier = DetectTier::Hybrid;
  if (TierName == "vc")
    Tier = DetectTier::Vc;
  else if (TierName == "smt")
    Tier = DetectTier::Smt;
  else if (TierName != "hybrid") {
    std::fprintf(stderr,
                 "error: --tier must be vc, smt, or hybrid (got '%s')\n",
                 TierName.c_str());
    return ExitUsage;
  }
  const bool CheckTiers = Options.getBool("check-tiers", false);
  const std::string PropertyName = Options.getString("property", "race");
  const std::string TechName = Options.getString("technique", "rv");
  if (CheckTiers && Tier != DetectTier::Hybrid) {
    std::fprintf(stderr,
                 "error: --check-tiers cross-validates the WCP tier "
                 "against the solver, so it requires --tier=hybrid (got "
                 "--tier=%s)\n",
                 TierName.c_str());
    return ExitUsage;
  }
  if (CheckTiers && (PropertyName != "race" ||
                     (TechName != "rv" && TechName != "said"))) {
    std::fprintf(stderr,
                 "error: --check-tiers needs the solver-backed race "
                 "pipeline (--property=race with --technique=rv or said)\n");
    return ExitUsage;
  }
  if (Tier == DetectTier::Vc && PropertyName != "race") {
    std::fprintf(stderr,
                 "error: --tier=vc detects races only; --property=%s "
                 "needs the solver (use --tier=hybrid or --tier=smt)\n",
                 PropertyName.c_str());
    return ExitUsage;
  }
  if (Tier == DetectTier::Vc && TechName != "rv" && TechName != "said") {
    std::fprintf(stderr,
                 "error: --tier=vc replaces the solver pipeline of the rv "
                 "and said techniques; --technique=%s has its own "
                 "dedicated detector (drop --tier=vc)\n",
                 TechName.c_str());
    return ExitUsage;
  }

  std::string StatsJsonPath = Options.getString("stats-json", "");
  std::string TraceEventsPath = Options.getString("trace-events", "");
  std::string ProfilePath = Options.getString("profile", "");
  if (ProfilePath == "-") {
    std::fprintf(stderr, "error: --profile needs a file path (the trace is "
                         "one JSON document, not a streamable block)\n");
    return ExitUsage;
  }
  // Telemetry must be on before loadTrace so interpreter counters from an
  // on-the-fly recording land in the same snapshot. --profile implies
  // telemetry: the phase timers it samples are telemetry-gated.
  TraceEventSink Sink;
  ProfileCollector Profiler;
  if (Options.getBool("stats") || !StatsJsonPath.empty() ||
      !TraceEventsPath.empty() || !ProfilePath.empty()) {
    Telemetry::setEnabled(true);
    Telemetry::instance().reset();
    if (!TraceEventsPath.empty()) {
      std::string Error;
      if (!Sink.open(TraceEventsPath, Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return ExitUsage;
      }
      Telemetry::instance().setSink(&Sink);
    }
    if (!ProfilePath.empty()) {
      ProfileCollector::setActive(&Profiler);
      Profiler.setThreadName("main");
    }
  }

  Trace T;
  std::string Source;
  if (!loadTrace(Options.positional()[1], Options, T, &Source))
    return ExitUsage;

  ConsistencyResult C = checkConsistency(T, ConsistencyMode::Fragment);
  if (!C.Ok) {
    std::fprintf(stderr, "error: inconsistent input trace: %s\n",
                 C.Message.c_str());
    return ExitUsage;
  }

  DetectorOptions Detect;
  Detect.WindowSize = static_cast<uint32_t>(Options.getInt("window", 10000));
  Detect.PerCopBudgetSeconds = Options.getDouble("budget", 60);
  Detect.SolverName = Options.getString("solver", "idl");
  // The vc tier never talks to a solver, so it cannot derive witness
  // models; everything it prints is an unwitnessed (weakly sound) report.
  Detect.CollectWitnesses =
      Tier != DetectTier::Vc && Options.getBool("witness", true);
  Detect.Tier = Tier;
  Detect.CheckTiers = CheckTiers;
  Detect.Jobs = static_cast<uint32_t>(Options.getInt("jobs", 0));
  Detect.Incremental = Options.getBool("incremental", true) &&
                       !Options.getBool("no-incremental", false);
  Detect.Slice = !Options.getBool("no-slice", false);
  Detect.RetryBudgets = RetryBudgets;
  Technique Tech = parseTechnique(Options.getString("technique", "rv"));

  // Checkpointing: the fingerprint pins the trace contents and every
  // result-relevant flag (jobs and no-slice excluded — reports are
  // identical for any value of either), so a checkpoint directory can
  // only resume the same analysis.
  Detect.CheckpointDir = Options.getString("checkpoint", "");
  if (!Detect.CheckpointDir.empty()) {
    std::string Flags = formatString(
        "technique=%s property=%s window=%u solver=%s budget=%g "
        "incremental=%d witness=%d static-prune=%d retry-budgets=%s "
        "tier=%s check-tiers=%d",
        Options.getString("technique", "rv").c_str(),
        Options.getString("property", "race").c_str(), Detect.WindowSize,
        Detect.SolverName.c_str(), Detect.PerCopBudgetSeconds,
        Detect.Incremental ? 1 : 0, Detect.CollectWitnesses ? 1 : 0,
        Options.getBool("static-prune") ? 1 : 0,
        Options.getString("retry-budgets", "").c_str(),
        tierName(Tier), CheckTiers ? 1 : 0);
    Detect.CheckpointFingerprint =
        checkpointHash(Flags, checkpointHash(writeTraceText(T)));
  }

  // Sound static COP pruning: needs the program source, so it only applies
  // to .rv inputs (a bare trace has no control-flow structure to analyze).
  std::unique_ptr<Program> PruneProgram;
  std::unique_ptr<StaticPruneOracle> Oracle;
  if (Options.getBool("static-prune")) {
    if (Source.empty()) {
      std::fprintf(stderr, "warning: --static-prune needs a .rv program "
                           "input; ignoring\n");
    } else {
      std::string ParseError;
      auto Parsed = parseProgram(Source, ParseError);
      if (!Parsed) {
        std::fprintf(stderr, "error: %s\n", ParseError.c_str());
        return 1;
      }
      PruneProgram = std::make_unique<Program>(std::move(*Parsed));
      Oracle = std::make_unique<StaticPruneOracle>(*PruneProgram);
      Oracle->bind(T);
      Detect.StaticPruner = Oracle.get();
      Detect.CfFold = Oracle.get();
      if (Telemetry::enabled())
        MetricsRegistry::global()
            .gauge("analysis.vars_thread_local")
            .set(Oracle->threadLocalVars());
    }
  }

  // Both renderings draw from the same DetectionStats + telemetry snapshot;
  // returns false only on stats-json write failure.
  auto emitStats = [&](const DetectionStats &Stats, const char *What) {
    if (Options.getBool("stats"))
      std::fputs(renderStatsTable(Stats, What).c_str(), stdout);
    if (StatsJsonPath.empty())
      return true;
    return writeJsonOutput(StatsJsonPath, statsToJson(Stats, What));
  };

  // Detaches the collector and writes the Chrome/Perfetto trace. Called
  // after emitStats on every analysis path so the profile spans the whole
  // run; returns false on write failure (an internal error — the analysis
  // itself succeeded).
  auto finishProfile = [&]() {
    if (ProfilePath.empty())
      return true;
    ProfileCollector::setActive(nullptr);
    std::string Error;
    if (!Profiler.writeFile(ProfilePath, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return false;
    }
    return true;
  };

  // Exit code: findings → 1; a degraded run that left candidates
  // undecided → 3 (the report may be incomplete); clean and empty → 0.
  auto exitCode = [](size_t Findings, size_t Unknowns) {
    if (Unknowns)
      return static_cast<int>(ExitInternal);
    return static_cast<int>(Findings ? ExitFindings : ExitSuccess);
  };

  if (Options.getString("property", "race") == "deadlock") {
    DeadlockResult R = detectDeadlocks(T, Detect);
    std::fputs(renderDeadlockReport(T, R).c_str(), stdout);
    if (!emitStats(R.Stats, "deadlock") || !finishProfile())
      return ExitInternal;
    return exitCode(R.Deadlocks.size(), R.Unknowns.size());
  }

  if (Options.getString("property", "race") == "atomicity") {
    AtomicityResult R = detectAtomicityViolations(T, Detect);
    std::fputs(renderAtomicityReport(R).c_str(), stdout);
    if (!emitStats(R.Stats, "atomicity") || !finishProfile())
      return ExitInternal;
    return exitCode(R.Violations.size(), R.Unknowns.size());
  }

  DetectionResult R = detectRaces(T, Tech, Detect);
  ReportRenderOptions Render;
  Render.VcTier = Detect.Tier == DetectTier::Vc;
  Render.WitnessTag = Tech == Technique::Maximal && Detect.CollectWitnesses;
  Render.WitnessEvents = Options.getBool("witness");
  std::fputs(renderRaceReport(T, Tech, R, Render).c_str(), stdout);
  if (!emitStats(R.Stats, techniqueName(Tech)) || !finishProfile())
    return ExitInternal;
  // A mismatch means the WCP tier called a pair racy that the solver
  // refuted — exactly the weak-soundness gap docs/TIERS.md describes. The
  // report above is still the solver's (check-tiers solves every COP), but
  // the run fails loudly so catalogs can gate on tier agreement.
  if (R.Stats.WcpMismatches) {
    std::fprintf(stderr,
                 "error: --check-tiers found %llu WCP-racy pair(s) the "
                 "solver refutes; the vc tier would over-report on this "
                 "trace (see docs/TIERS.md)\n",
                 static_cast<unsigned long long>(R.Stats.WcpMismatches));
    return ExitUsage;
  }
  return exitCode(R.raceCount(), R.Unknowns.size());
}

int cmdReplay(const OptionParser &Options) {
  if (Options.positional().size() < 2 || !Options.hasOption("trace")) {
    std::fprintf(stderr,
                 "usage: rvpredict replay <prog.rv> --trace=trace.txt\n");
    return 1;
  }
  std::string Source;
  if (!readFile(Options.positional()[1], Source)) {
    std::fprintf(stderr, "error: cannot open program\n");
    return 1;
  }
  std::string TraceText;
  if (!readFile(Options.getString("trace"), TraceText)) {
    std::fprintf(stderr, "error: cannot open trace\n");
    return 1;
  }
  std::string Error;
  auto Recorded = parseTraceText(TraceText, Error);
  if (!Recorded) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::vector<ThreadId> Schedule;
  for (const Event &E : Recorded->events())
    Schedule.push_back(E.Tid);

  Trace Replayed;
  RunResult Run;
  ReplayScheduler S(std::move(Schedule));
  if (!recordTrace(Source, Replayed, Run, Error, &S)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("replayed %llu events; schedule %s\n",
              static_cast<unsigned long long>(Replayed.size()),
              S.diverged() ? "DIVERGED" : "followed exactly");
  for (const RuntimeError &E : Run.Errors)
    std::printf("runtime error at line %u: %s\n", E.Line,
                E.Message.c_str());
  std::fputs(writeTraceText(Replayed).c_str(), stdout);
  return 0;
}

int cmdFuzz(const OptionParser &Options) {
  std::fputs(fuzzProgram(Options.getInt("seed", 1)).c_str(), stdout);
  return 0;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Options(
      "rvpredict: maximal sound predictive race detection\n"
      "subcommands: record, detect, replay, fuzz");
  Options.addOption("seed", "schedule / fuzz seed", "1");
  Options.addOption("schedule", "rr or random", "random");
  Options.addOption("out", "output file for record", "");
  Options.addOption("technique", "rv, said, cp, or hb", "rv");
  Options.addOption("property", "race, atomicity, or deadlock", "race");
  Options.addOption("window", "window size in events", "10000");
  Options.addOption("solver", "idl or z3", "idl");
  Options.addOption("budget", "per-COP solver budget (s)", "60");
  Options.addOption("jobs",
                    "solver worker threads (0 = one per hardware thread)",
                    "0");
  Options.addOption("incremental",
                    "decide COPs through a persistent per-window solver "
                    "session (assumption-based incremental solving)",
                    "true");
  Options.addOption("no-slice",
                    "disable cone-of-influence slicing of the per-COP "
                    "encodings (debug cross-check; reports are identical "
                    "either way — see docs/ENCODER.md)",
                    "false");
  Options.addOption("no-incremental",
                    "alias for --incremental=false (legacy "
                    "fresh-solver-per-COP path)",
                    "false");
  Options.addOption("static-prune",
                    "skip COPs a static analysis of the program proves "
                    "race-free (.rv inputs only)",
                    "false");
  Options.addOption("tier",
                    "race pipeline tier: vc (WCP vector clocks only), smt "
                    "(solver only), or hybrid (WCP prunes and "
                    "short-circuits ahead of the solver)",
                    "hybrid");
  Options.addOption("check-tiers",
                    "cross-validate the WCP tier against the solver on "
                    "every COP; mismatches fail the run with exit 2 "
                    "(requires --tier=hybrid)",
                    "false");
  Options.addOption("witness", "print witness reorderings", "false");
  Options.addOption("stats", "print detection statistics", "false");
  Options.addOption("stats-json", "write stats as JSON ('-' for stdout)", "");
  Options.addOption("trace-events",
                    "write per-window/COP/solve JSONL events "
                    "('-' for stdout)",
                    "");
  Options.addOption("profile",
                    "write a Chrome/Perfetto trace of the run "
                    "(load in ui.perfetto.dev or chrome://tracing)",
                    "");
  Options.addOption("trace", "trace file for replay", "");
  Options.addOption("retry-budgets",
                    "escalating per-COP retry budgets for unknown results, "
                    "e.g. 50ms,250ms,1s (empty = no retries)",
                    "");
  Options.addOption("checkpoint",
                    "directory for per-window checkpoints; rerunning with "
                    "the same flags resumes from the last completed window",
                    "");
  Options.addOption("skip-bad-events",
                    "skip malformed trace lines (counted in stats) instead "
                    "of failing the parse",
                    "false");
  Options.addOption("inject-faults",
                    "deterministic fault injection spec, e.g. "
                    "'seed=7,solver.timeout=3,trace.garble' "
                    "(also read from RV_FAULTS)",
                    "");
  if (!Options.parse(Argc, Argv))
    return ExitUsage;
  // Fault injection configures process-wide before any subcommand runs;
  // the env var lets test harnesses reach child processes they don't exec
  // directly.
  std::string FaultSpec = Options.getString("inject-faults", "");
  if (FaultSpec.empty())
    if (const char *Env = std::getenv("RV_FAULTS"))
      FaultSpec = Env;
  if (!FaultSpec.empty()) {
    std::string FaultError;
    if (!FaultInjector::configure(FaultSpec, FaultError)) {
      std::fprintf(stderr, "error: bad --inject-faults spec: %s\n",
                   FaultError.c_str());
      return ExitUsage;
    }
  }
  if (Options.positional().empty()) {
    std::fprintf(stderr,
                 "usage: rvpredict <record|detect|replay|fuzz> ...\n");
    return ExitUsage;
  }
  const std::string &Cmd = Options.positional()[0];
  if (Cmd == "record")
    return cmdRecord(Options);
  if (Cmd == "detect")
    return cmdDetect(Options);
  if (Cmd == "replay")
    return cmdReplay(Options);
  if (Cmd == "fuzz")
    return cmdFuzz(Options);
  std::fprintf(stderr, "error: unknown subcommand '%s'\n", Cmd.c_str());
  return ExitUsage;
}
