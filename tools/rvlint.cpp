//===- tools/rvlint.cpp - Static MiniRV linter --------------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Standalone static analysis over MiniRV programs — no execution, no
/// traces. Reports the diagnostics of analysis/Lint.h with source
/// locations:
///
///   rvlint <prog.rv>... [--races] [--json]
///
/// Output lines use the compiler-style format
///   <basename>:<line>:<col>: warning: <message> [<kind>]
/// (basenames, not paths, so golden files are location-independent).
/// `--races` adds the ranked Eraser-style static race warnings of
/// analysis/RaceCheck.h as [static-race] lines (a "races" array in JSON).
///
/// Exit status: 0 when every file is clean, 1 when any diagnostic or race
/// warning was reported, 2 on usage/IO/parse errors.
///
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "lang/Parser.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace rvp;

namespace {

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

std::string baseName(const std::string &Path) {
  size_t Slash = Path.find_last_of("/\\");
  return Slash == std::string::npos ? Path : Path.substr(Slash + 1);
}

/// Lints one file; returns 0 (clean), 1 (diagnostics), or 2 (error).
int lintFile(const std::string &Path, bool Json, bool Races) {
  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::string ParseError;
  std::optional<Program> P = parseProgram(Source, ParseError);
  if (!P) {
    std::fprintf(stderr, "%s:%s\n", baseName(Path).c_str(),
                 ParseError.c_str());
    return 2;
  }
  LintResult R = runLint(*P, Races);
  if (Json)
    renderLintJson(R, baseName(Path), std::cout);
  else
    renderLintText(R, baseName(Path), std::cout);
  return R.Diags.empty() && R.Races.empty() ? 0 : 1;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Options(
      "rvlint: static analysis diagnostics for MiniRV programs");
  Options.addOption("json", "emit diagnostics as JSON", "false");
  Options.addOption("races", "add ranked static race warnings", "false");
  if (!Options.parse(Argc, Argv))
    return 2;
  if (Options.positional().empty()) {
    std::fprintf(stderr, "usage: rvlint <prog.rv>... [--races] [--json]\n");
    return 2;
  }

  int Worst = 0;
  for (const std::string &Path : Options.positional())
    Worst = std::max(Worst, lintFile(Path, Options.getBool("json"),
                                     Options.getBool("races")));
  return Worst;
}
