//===- examples/quickstart.cpp - Five-minute tour ---------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: record an execution of the paper's Figure 1 program, run
/// all four detectors on the same trace, and print the maximal
/// technique's race with its witness reordering.
///
///   $ quickstart [--solver=idl|z3] [--seed=N]
///
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"
#include "runtime/Interpreter.h"
#include "support/CommandLine.h"
#include "trace/TraceIO.h"
#include "workloads/Programs.h"

#include <cstdio>

using namespace rvp;

int main(int Argc, const char **Argv) {
  OptionParser Options("Record Figure 1 of the paper and predict its race");
  Options.addOption("solver", "SMT backend: idl or z3", "idl");
  Options.addOption("seed", "schedule seed for the recording", "7");
  if (!Options.parse(Argc, Argv))
    return 1;

  // 1. The program under test (MiniRV port of the paper's Figure 1).
  std::string Source = figure1Program();
  std::printf("--- program -----------------------------------------\n%s\n",
              Source.c_str());

  // 2. Record one execution. The recorder logs reads/writes, lock and
  //    thread operations, and branch events (the paper's control-flow
  //    abstraction).
  Trace T;
  RunResult Run;
  std::string Error;
  RandomScheduler Scheduler(Options.getInt("seed", 7));
  if (!recordTrace(Source, T, Run, Error, &Scheduler)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  TraceStats Stats = T.stats();
  std::printf("--- recorded trace ----------------------------------\n");
  std::printf("%s", writeTraceText(T).c_str());
  std::printf("threads=%u events=%llu rw=%llu sync=%llu branch=%llu\n\n",
              Stats.Threads,
              static_cast<unsigned long long>(Stats.Events),
              static_cast<unsigned long long>(Stats.ReadsWrites),
              static_cast<unsigned long long>(Stats.Syncs),
              static_cast<unsigned long long>(Stats.Branches));

  // 3. Predict races with each technique.
  DetectorOptions Detect;
  Detect.SolverName = Options.getString("solver", "idl");
  std::printf("--- detection ---------------------------------------\n");
  for (Technique Tech : {Technique::Hb, Technique::Cp, Technique::Said,
                         Technique::Maximal}) {
    DetectionResult R = detectRaces(T, Tech, Detect);
    std::printf("%-5s found %zu race(s) in %.3fs\n", techniqueName(Tech),
                R.raceCount(), R.Stats.Seconds);
    for (const RaceReport &Race : R.Races)
      std::printf("      %s: %s <-> %s%s\n", Race.Variable.c_str(),
                  Race.LocFirst.c_str(), Race.LocSecond.c_str(),
                  Race.WitnessValid ? " (witness validated)" : "");
  }

  // 4. Show the witness: the reordered window that manifests the race.
  DetectionResult Maximal = detectRaces(T, Technique::Maximal, Detect);
  if (!Maximal.Races.empty() && !Maximal.Races[0].Witness.empty()) {
    const RaceReport &Race = Maximal.Races[0];
    std::printf("\n--- witness reordering for (%s, %s) -----------------\n",
                Race.LocFirst.c_str(), Race.LocSecond.c_str());
    for (EventId Id : Race.Witness) {
      const char *Marker =
          Id == Race.First || Id == Race.Second ? "  <== race" : "";
      std::printf("  %2u: %s%s\n", Id, toString(T[Id]).c_str(), Marker);
    }
  }
  return 0;
}
