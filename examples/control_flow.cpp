//===- examples/control_flow.cpp - Figure 2: why branch events matter -------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Demonstrates the paper's key insight (Figure 2): two programs that
/// produce *identical* read/write traces but differ in control flow. With
/// branch events in the trace, the detector distinguishes them — case ①
/// has a race on x, case ② does not.
///
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <cstdio>

using namespace rvp;

namespace {

void analyze(const char *Label, const Trace &T) {
  std::printf("--- %s ----------------------------------------\n", Label);
  std::printf("%s", writeTraceText(T).c_str());
  DetectionResult R = detectRaces(T, Technique::Maximal);
  if (R.Races.empty()) {
    std::printf("=> no race: line 4 is control-dependent on the read of "
                "y\n\n");
    return;
  }
  for (const RaceReport &Race : R.Races)
    std::printf("=> race on %s between %s and %s\n", Race.Variable.c_str(),
                Race.LocFirst.c_str(), Race.LocSecond.c_str());
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Figure 2 of the paper: `r1 = y` vs `while (y == 0);` give\n"
              "the same read/write trace; only the branch event differs.\n\n");

  // Case ①: r1 = y — a plain read, no control dependence afterwards.
  {
    TraceBuilder B;
    B.write("t1", "x", 1, "line1");
    B.write("t1", "y", 1, "line2", /*IsVolatile=*/true);
    B.read("t2", "y", 1, "line3", /*IsVolatile=*/true);
    B.read("t2", "x", 1, "line4");
    analyze("case 1: r1 = y", B.build());
  }

  // Case ②: while (y == 0); — the loop's branch guards everything after.
  {
    TraceBuilder B;
    B.write("t1", "x", 1, "line1");
    B.write("t1", "y", 1, "line2", /*IsVolatile=*/true);
    B.read("t2", "y", 1, "line3", /*IsVolatile=*/true);
    B.branch("t2", "line3");
    B.read("t2", "x", 1, "line4");
    analyze("case 2: while (y == 0);", B.build());
  }

  std::printf("A detector without control-flow abstraction must treat both\n"
              "cases like case 2 and miss the race; an unsound one treats\n"
              "both like case 1 and reports a false positive for case 2.\n");
  return 0;
}
