//===- examples/atomic_region.cpp - Atomicity-violation prediction -----------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The maximal causal model is not limited to races (Section 2.5): this
/// example predicts *atomicity violations* from one execution. The
/// scenario mirrors the Eclipse KeyedHashSet finding the paper reports —
/// a class documented as thread-unsafe used concurrently: the element
/// count is read and re-written inside what the author assumed was an
/// atomic section, while another thread updates it through a different
/// entry point.
///
//===----------------------------------------------------------------------===//

#include "detect/Atomicity.h"
#include "runtime/Interpreter.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace rvp;

namespace {

const char *SetProgram = R"(
shared elementCount;
shared storage[8];
lock setLock;
thread adder {
  sync setLock {
    local n = elementCount;      // read size
    storage[n] = 11;             // place element
    elementCount = n + 1;        // publish new size
  }
}
thread remover {
  local n = elementCount;        // misses the lock entirely...
  elementCount = n - 1;          // ...and updates unconditionally
}
thread reader {
  local n = elementCount;        // racy size probe, but every use of it
  local x = 0;                   // is guarded by the branch below, so the
  if (n > 0) { x = storage[n - 1]; }   // model refutes intrusion by it
}
main {
  spawn adder; spawn remover; spawn reader;
  join adder; join remover; join reader;
  assert elementCount >= 0;
}
)";

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Options("Predict atomicity violations of critical sections");
  Options.addOption("seed", "recording schedule seed", "2");
  if (!Options.parse(Argc, Argv))
    return 1;

  Trace T;
  RunResult Run;
  std::string Error;
  RandomScheduler S(Options.getInt("seed", 2), 85);
  if (!recordTrace(SetProgram, T, Run, Error, &S)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("recorded %llu events (final elementCount = %lld)\n\n",
              static_cast<unsigned long long>(T.size()),
              static_cast<long long>(Run.FinalCells.at("elementCount")));

  AtomicityResult R = detectAtomicityViolations(T);
  std::printf("%zu atomicity violation(s) of the critical sections:\n",
              R.Violations.size());
  for (const AtomicityReport &V : R.Violations) {
    std::printf("\n  region on lock %s (events %u..%u), variable %s\n",
                T.lockName(V.RegionLock).c_str(), V.RegionAcquire,
                V.RegionRelease, V.Variable.c_str());
    std::printf("  pattern: %s\n", atomicityPatternName(V.Pattern));
    std::printf("  %s  ..intruded by..  %s  ..before..  %s   [witness %s]\n",
                V.LocFirst.c_str(), V.LocRemote.c_str(),
                V.LocSecond.c_str(),
                V.WitnessValid ? "validated" : "-");
  }
  if (!R.Violations.empty())
    std::printf("\nthe size update in `adder` is not atomic against the\n"
                "lock-free `remover`/`reader`: a remote update between the\n"
                "read of elementCount and its re-write loses an element or\n"
                "reads out of bounds.\n");
  return 0;
}
