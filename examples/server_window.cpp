//===- examples/server_window.cpp - Windowed analysis of a long trace --------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Scales the analysis to a long execution: generates a server-like
/// synthetic trace (defaults to the ftpserver workload of Table 1) and
/// runs all four detectors with the windowing strategy of Section 4,
/// reporting per-technique races, quick-check counts, and times.
///
///   $ server_window [--system=ftpserver] [--events=N] [--window=N]
///
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"
#include "support/CommandLine.h"
#include "workloads/Synthetic.h"

#include <cstdio>

using namespace rvp;

int main(int Argc, const char **Argv) {
  OptionParser Options("Windowed detection on a synthetic server trace");
  Options.addOption("system", "which Table 1 real-system workload",
                    "ftpserver");
  Options.addOption("events", "override the trace size", "");
  Options.addOption("window", "window size (0 = whole trace)", "10000");
  Options.addOption("budget", "per-COP solver budget in seconds", "10");
  if (!Options.parse(Argc, Argv))
    return 1;

  SyntheticSpec Spec = realSystemSpec(Options.getString("system"));
  if (Options.hasOption("events"))
    Spec.TargetEvents = Options.getInt("events", Spec.TargetEvents);
  std::printf("generating '%s': %llu events, %u workers...\n",
              Spec.Name.c_str(),
              static_cast<unsigned long long>(Spec.TargetEvents),
              Spec.Workers);
  Trace T = generateSynthetic(Spec);
  TraceStats Stats = T.stats();
  std::printf("trace: threads=%u events=%llu rw=%llu sync=%llu "
              "branch=%llu\n\n",
              Stats.Threads,
              static_cast<unsigned long long>(Stats.Events),
              static_cast<unsigned long long>(Stats.ReadsWrites),
              static_cast<unsigned long long>(Stats.Syncs),
              static_cast<unsigned long long>(Stats.Branches));

  DetectorOptions Detect;
  Detect.WindowSize = static_cast<uint32_t>(Options.getInt("window", 10000));
  Detect.PerCopBudgetSeconds = Options.getDouble("budget", 10);

  std::printf("%-6s %8s %8s %8s %10s %10s\n", "tech", "races", "QC",
              "windows", "solves", "time(s)");
  for (Technique Tech : {Technique::Hb, Technique::Cp, Technique::Said,
                         Technique::Maximal}) {
    DetectionResult R = detectRaces(T, Tech, Detect);
    std::printf("%-6s %8zu %8llu %8llu %10llu %10.2f\n",
                techniqueName(Tech), R.raceCount(),
                static_cast<unsigned long long>(R.Stats.QcPassed),
                static_cast<unsigned long long>(R.Stats.Windows),
                static_cast<unsigned long long>(R.Stats.SolverCalls),
                R.Stats.Seconds);
  }
  std::printf("\nexpected from the workload calibration: HB=%u CP=%u "
              "Said=%u RV=%u QC=%u\n",
              Spec.expectedHb(), Spec.expectedCp(), Spec.expectedSaid(),
              Spec.expectedRv(), Spec.expectedQc());
  return 0;
}
