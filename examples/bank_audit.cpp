//===- examples/bank_audit.cpp - Predict, then replay a race -----------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A realistic scenario end to end: a small banking service where the
/// audit thread reads the balance without the account lock. We record a
/// *clean* execution (the audit happens to run while no transfer is in
/// flight), predict the race from that single trace, and then *replay*
/// the predicted witness schedule in the interpreter to watch the race
/// manifest for real.
///
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"
#include "runtime/Interpreter.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace rvp;

namespace {

const char *BankProgram = R"(
shared balance = 100;
shared auditOk = 1;
lock account;
thread deposit {
  sync account {
    local b = balance;
    balance = b + 50;
  }
}
thread withdraw {
  sync account {
    local b = balance;
    balance = b - 30;
  }
}
thread audit {
  local snapshot = balance;   // <-- reads balance without the lock
  if (snapshot != 100 && snapshot != 150 && snapshot != 120) {
    auditOk = 0;
  }
}
main {
  spawn deposit;
  spawn withdraw;
  spawn audit;
  join deposit;
  join withdraw;
  join audit;
  assert auditOk == 1;
}
)";

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Options("Predict a race from one clean run, then replay it");
  Options.addOption("seed", "recording schedule seed", "3");
  if (!Options.parse(Argc, Argv))
    return 1;

  // 1. Record one (racy-schedule-free) execution.
  Trace T;
  RunResult Run;
  std::string Error;
  RandomScheduler Scheduler(Options.getInt("seed", 3), 80);
  if (!recordTrace(BankProgram, T, Run, Error, &Scheduler)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("recorded %llu events; final balance = %lld; errors: %zu\n",
              static_cast<unsigned long long>(T.size()),
              static_cast<long long>(Run.FinalCells.at("balance")),
              Run.Errors.size());

  // 2. Predict races from that single trace.
  DetectionResult R = detectRaces(T, Technique::Maximal);
  std::printf("\nmaximal detector: %zu race signature(s)\n", R.raceCount());
  for (const RaceReport &Race : R.Races)
    std::printf("  %-10s %s <-> %s  witness=%s\n", Race.Variable.c_str(),
                Race.LocFirst.c_str(), Race.LocSecond.c_str(),
                Race.WitnessValid ? "valid" : "-");
  if (R.Races.empty())
    return 0;

  // 3. Replay the first witness: drive the interpreter with the predicted
  //    thread schedule and watch the two accesses execute back to back.
  const RaceReport &Race = R.Races[0];
  std::vector<ThreadId> Schedule;
  for (EventId Id : Race.Witness)
    Schedule.push_back(T[Id].Tid);

  Trace Replayed;
  RunResult ReplayRun;
  ReplayScheduler Replay(Schedule);
  if (!recordTrace(BankProgram, Replayed, ReplayRun, Error, &Replay)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("\nreplayed the witness schedule: %s\n",
              Replay.diverged() ? "diverged (schedule-dependent values)"
                                : "followed exactly");

  // Find the racing pair in the replayed trace and show the neighborhood.
  std::printf("replayed neighborhood of the race:\n");
  for (EventId Id = 0; Id < Replayed.size(); ++Id) {
    const Event &E = Replayed[Id];
    if (E.Loc == UnknownLoc)
      continue;
    const std::string &Loc = Replayed.locName(E.Loc);
    if (Loc == Race.LocFirst || Loc == Race.LocSecond)
      std::printf("  %2u: %s @%s\n", Id, toString(E).c_str(), Loc.c_str());
  }
  std::printf("\nthe unsynchronized audit read can interleave inside a\n"
              "transfer; with an inconsistent snapshot the audit flags a\n"
              "healthy account.\n");
  return 0;
}
