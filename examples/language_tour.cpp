//===- examples/language_tour.cpp - MiniRV walkthrough -----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tour of the MiniRV front end and runtime: every language construct,
/// how it compiles, how scheduling affects the recorded trace, and the
/// trace text format round trip. Pass a file path to run your own
/// program instead.
///
///   $ language_tour [file.rv] [--schedule=rr|random] [--seed=N]
///
//===----------------------------------------------------------------------===//

#include "runtime/Compile.h"
#include "runtime/Interpreter.h"
#include "support/CommandLine.h"
#include "trace/Consistency.h"
#include "trace/TraceIO.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace rvp;

namespace {

const char *TourProgram = R"(
// Every MiniRV construct in one program.
shared counter;            // shared 64-bit integer, initially 0
shared limit = 3;          // with an initializer
shared volatile flag;      // volatile: accesses synchronize, never race
shared slots[4];           // fixed-size shared array
lock guard;                // a (reentrant) lock

thread worker {
  local mine = 0;                 // thread-local, invisible in traces
  while (mine < limit) {          // loop condition -> branch event
    sync guard {                  // acquire/release wrapper
      counter = counter + 1;
    }
    slots[mine % 4] = mine;       // dynamic index -> implicit branch
    mine = mine + 1;
  }
  flag = 1;                       // volatile write
}

main {
  spawn worker;                   // fork
  lock guard;                     // explicit lock statement
  counter = counter + 10;
  unlock guard;
  local seen = flag;              // volatile read
  if (seen == 1) { skip; }        // conditional -> branch event
  join worker;                    // join
  assert counter == limit + 10;   // checked at runtime
}
)";

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Options("MiniRV language and runtime walkthrough");
  Options.addOption("schedule", "rr (round-robin) or random", "rr");
  Options.addOption("seed", "seed for the random schedule", "1");
  Options.addOption("quantum", "round-robin quantum", "3");
  if (!Options.parse(Argc, Argv))
    return 1;

  std::string Source = TourProgram;
  if (!Options.positional().empty()) {
    std::ifstream In(Options.positional()[0]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   Options.positional()[0].c_str());
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  std::printf("--- source ------------------------------------------\n%s\n",
              Source.c_str());

  std::string Error;
  auto Compiled = compileSource(Source, Error);
  if (!Compiled) {
    std::fprintf(stderr, "compile error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("--- compiled ----------------------------------------\n");
  std::printf("threads: %zu, shared cells: %u, locks: %zu\n",
              Compiled->Threads.size(), Compiled->numCells(),
              Compiled->Locks.size());
  for (const CompiledThread &CT : Compiled->Threads)
    std::printf("  %-8s %zu instructions, %u locals\n", CT.Name.c_str(),
                CT.Code.size(), CT.NumLocals);

  RoundRobinScheduler RoundRobin(
      static_cast<uint32_t>(Options.getInt("quantum", 3)));
  RandomScheduler Random(Options.getInt("seed", 1));
  Scheduler *S = Options.getString("schedule", "rr") == "random"
                     ? static_cast<Scheduler *>(&Random)
                     : &RoundRobin;

  Trace T;
  RunResult Run = runProgram(*Compiled, *S, T);
  std::printf("\n--- execution ---------------------------------------\n");
  std::printf("events: %llu, deadlocked: %s\n",
              static_cast<unsigned long long>(Run.EventCount),
              Run.Deadlocked ? "yes" : "no");
  for (const RuntimeError &E : Run.Errors)
    std::printf("runtime error at line %u (thread %s): %s\n", E.Line,
                T.threadName(E.Tid).c_str(), E.Message.c_str());
  for (const auto &[Name, V] : Run.FinalCells)
    std::printf("  %-10s = %lld\n", Name.c_str(),
                static_cast<long long>(V));

  ConsistencyResult C = checkConsistency(T, ConsistencyMode::Strict);
  std::printf("\ntrace is %s\n",
              C.Ok ? "sequentially consistent" : C.Message.c_str());

  std::printf("\n--- trace (text format, round-trips) -----------------\n%s",
              writeTraceText(T).c_str());
  std::string ParseError;
  auto Reparsed = parseTraceText(writeTraceText(T), ParseError);
  std::printf("round trip: %s\n",
              Reparsed && Reparsed->size() == T.size() ? "ok" : "FAILED");
  return 0;
}
