//===- examples/deadlock_predict.cpp - Predict and replay a deadlock ----------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Predicts a deadlock from a single clean execution and then replays the
/// witness schedule to drive the program into the real deadlock — the
/// deadlock analogue of predictive race detection (Section 2.5's "other
/// notions" on the same maximal causal model).
///
//===----------------------------------------------------------------------===//

#include "detect/Deadlock.h"
#include "runtime/Interpreter.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace rvp;

namespace {

const char *TransferProgram = R"(
shared fromBalance = 100;
shared toBalance = 50;
lock fromLock; lock toLock;
thread transferAB {
  lock fromLock;
  local amount = 10;
  lock toLock;                 // from -> to
  fromBalance = fromBalance - amount;
  toBalance = toBalance + amount;
  unlock toLock;
  unlock fromLock;
}
thread transferBA {
  lock toLock;
  local amount = 5;
  lock fromLock;               // to -> from: opposite order!
  toBalance = toBalance - amount;
  fromBalance = fromBalance + amount;
  unlock fromLock;
  unlock toLock;
}
main {
  spawn transferAB;
  spawn transferBA;
  join transferAB;
  join transferBA;
  assert fromBalance + toBalance == 150;
}
)";

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Options("Predict a lock-order deadlock, then replay it");
  Options.addOption("seed", "recording schedule seed (clean run)", "1");
  if (!Options.parse(Argc, Argv))
    return 1;

  // 1. One clean execution (the transfers happen not to overlap).
  Trace T;
  RunResult Run;
  std::string Error;
  RoundRobinScheduler Recorder(64);
  if (!recordTrace(TransferProgram, T, Run, Error, &Recorder)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("recorded %llu events; deadlocked: %s\n",
              static_cast<unsigned long long>(T.size()),
              Run.Deadlocked ? "yes" : "no");

  // 2. Predict.
  DeadlockResult R = detectDeadlocks(T);
  std::printf("predicted %zu potential deadlock(s)\n", R.Deadlocks.size());
  for (const DeadlockReport &D : R.Deadlocks)
    std::printf("  %s holds %s, wants %s (%s) <-> %s holds %s, wants %s "
                "(%s)  witness=%s\n",
                T.threadName(D.ThreadA).c_str(),
                T.lockName(D.LockHeldByA).c_str(),
                T.lockName(D.LockHeldByB).c_str(), D.LocRequestA.c_str(),
                T.threadName(D.ThreadB).c_str(),
                T.lockName(D.LockHeldByB).c_str(),
                T.lockName(D.LockHeldByA).c_str(), D.LocRequestB.c_str(),
                D.WitnessValid ? "valid" : "-");
  if (R.Deadlocks.empty())
    return 0;

  // 3. Replay the witness prefix: both threads enter their outer
  //    sections, then block on each other.
  const DeadlockReport &D = R.Deadlocks[0];
  size_t Cut = 0;
  for (size_t I = 0; I < D.Witness.size(); ++I)
    if (D.Witness[I] == D.RequestA || D.Witness[I] == D.RequestB)
      Cut = I;
  std::vector<ThreadId> Schedule;
  for (size_t I = 0; I < Cut; ++I)
    Schedule.push_back(T[D.Witness[I]].Tid);

  Trace Replayed;
  RunResult ReplayRun;
  ReplayScheduler S(Schedule);
  if (!recordTrace(TransferProgram, Replayed, ReplayRun, Error, &S)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("\nreplayed the witness prefix: the program %s\n",
              ReplayRun.Deadlocked
                  ? "DEADLOCKED, exactly as predicted"
                  : "did not deadlock (schedule diverged)");
  return 0;
}
