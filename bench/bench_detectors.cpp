//===- bench/bench_detectors.cpp - Detector throughput ------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Scalability of the four techniques with trace length (the paper's
/// claim: HB/CP are fast, the SMT-based detectors remain practical with
/// windowing; our technique generates fewer constraints than Said et
/// al.'s whole-trace consistency and solves faster), plus the quick-check
/// ablation of Section 4.
///
//===----------------------------------------------------------------------===//

#include "detect/Atomicity.h"
#include "detect/Deadlock.h"
#include "detect/Detect.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

using namespace rvp;

namespace {

Trace makeTrace(uint64_t Events) {
  SyntheticSpec Spec;
  Spec.Name = "bench";
  Spec.Workers = 8;
  Spec.TargetEvents = Events;
  Spec.PlainRaces = 4;
  Spec.CpOnlyRaces = 2;
  Spec.SaidOnlyRaces = 2;
  Spec.HbNotSaidRaces = 2;
  Spec.RvOnlyRaces = 2;
  Spec.QcOnlyPairs = 4;
  Spec.OrderedPairs = 8;
  Spec.AtomicityPairs = 4;
  Spec.DeadlockCycles = 4;
  Spec.Seed = 5;
  return generateSynthetic(Spec);
}

void runDetector(benchmark::State &State, Technique Tech,
                 bool UseQuickCheck = true) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.UseQuickCheck = UseQuickCheck;
  Options.CollectWitnesses = false;
  size_t Races = 0;
  uint64_t SolverCalls = 0;
  for (auto _ : State) {
    DetectionResult R = detectRaces(T, Tech, Options);
    Races = R.raceCount();
    SolverCalls = R.Stats.SolverCalls;
    benchmark::DoNotOptimize(R);
  }
  State.counters["races"] = static_cast<double>(Races);
  State.counters["solves"] = static_cast<double>(SolverCalls);
  State.counters["events/s"] = benchmark::Counter(
      static_cast<double>(T.size()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Hb(benchmark::State &State) { runDetector(State, Technique::Hb); }
void BM_Cp(benchmark::State &State) { runDetector(State, Technique::Cp); }
void BM_Said(benchmark::State &State) {
  runDetector(State, Technique::Said);
}
void BM_Maximal(benchmark::State &State) {
  runDetector(State, Technique::Maximal);
}
void BM_MaximalNoQuickCheck(benchmark::State &State) {
  runDetector(State, Technique::Maximal, /*UseQuickCheck=*/false);
}

void BM_Atomicity(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  size_t Found = 0;
  for (auto _ : State) {
    AtomicityResult R = detectAtomicityViolations(T, Options);
    Found = R.Violations.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["violations"] = static_cast<double>(Found);
}

void BM_Deadlock(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  size_t Found = 0;
  for (auto _ : State) {
    DeadlockResult R = detectDeadlocks(T, Options);
    Found = R.Deadlocks.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["deadlocks"] = static_cast<double>(Found);
}

} // namespace

BENCHMARK(BM_Hb)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cp)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Said)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Maximal)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaximalNoQuickCheck)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Atomicity)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Deadlock)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
