//===- bench/bench_detectors.cpp - Detector throughput ------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Scalability of the four techniques with trace length (the paper's
/// claim: HB/CP are fast, the SMT-based detectors remain practical with
/// windowing; our technique generates fewer constraints than Said et
/// al.'s whole-trace consistency and solves faster), plus the quick-check
/// ablation of Section 4.
///
//===----------------------------------------------------------------------===//

#include "detect/Atomicity.h"
#include "detect/Deadlock.h"
#include "detect/Detect.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace rvp;

namespace {

/// --jobs=N (default 0 = one worker per hardware thread), peeled off in
/// main() like --stats-json.
uint32_t JobsFlag = 0;

Trace makeTrace(uint64_t Events) {
  SyntheticSpec Spec;
  Spec.Name = "bench";
  Spec.Workers = 8;
  Spec.TargetEvents = Events;
  Spec.PlainRaces = 4;
  Spec.CpOnlyRaces = 2;
  Spec.SaidOnlyRaces = 2;
  Spec.HbNotSaidRaces = 2;
  Spec.RvOnlyRaces = 2;
  Spec.QcOnlyPairs = 4;
  Spec.OrderedPairs = 8;
  Spec.AtomicityPairs = 4;
  Spec.DeadlockCycles = 4;
  Spec.Seed = 5;
  return generateSynthetic(Spec);
}

void runDetector(benchmark::State &State, Technique Tech,
                 bool UseQuickCheck = true) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.UseQuickCheck = UseQuickCheck;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;
  size_t Races = 0;
  uint64_t SolverCalls = 0;
  DetectionStats Stats;
  for (auto _ : State) {
    DetectionResult R = detectRaces(T, Tech, Options);
    Races = R.raceCount();
    SolverCalls = R.Stats.SolverCalls;
    Stats = R.Stats;
    benchmark::DoNotOptimize(R);
  }
  State.counters["races"] = static_cast<double>(Races);
  State.counters["solves"] = static_cast<double>(SolverCalls);
  State.counters["windows"] = static_cast<double>(Stats.Windows);
  State.counters["qc"] = static_cast<double>(Stats.QcPassed);
  State.counters["timeouts"] = static_cast<double>(Stats.SolverTimeouts);
  State.counters["events/s"] = benchmark::Counter(
      static_cast<double>(T.size()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Hb(benchmark::State &State) { runDetector(State, Technique::Hb); }
void BM_Cp(benchmark::State &State) { runDetector(State, Technique::Cp); }
void BM_Said(benchmark::State &State) {
  runDetector(State, Technique::Said);
}
void BM_Maximal(benchmark::State &State) {
  runDetector(State, Technique::Maximal);
}
void BM_MaximalNoQuickCheck(benchmark::State &State) {
  runDetector(State, Technique::Maximal, /*UseQuickCheck=*/false);
}

void BM_Atomicity(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;
  size_t Found = 0;
  for (auto _ : State) {
    AtomicityResult R = detectAtomicityViolations(T, Options);
    Found = R.Violations.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["violations"] = static_cast<double>(Found);
}

void BM_Deadlock(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;
  size_t Found = 0;
  for (auto _ : State) {
    DeadlockResult R = detectDeadlocks(T, Options);
    Found = R.Deadlocks.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["deadlocks"] = static_cast<double>(Found);
}

} // namespace

BENCHMARK(BM_Hb)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cp)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Said)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Maximal)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaximalNoQuickCheck)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Atomicity)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Deadlock)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

namespace {

/// One instrumented run per technique on the mid-size workload, written as
/// {"techniques":{"rv":{...},...}}. Complements the timing loop above: the
/// benchmark numbers say how fast, this says where the time and the
/// constraints went.
int dumpStatsJson(const std::string &Path) {
  Telemetry::setEnabled(true);
  Trace T = makeTrace(8000);
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;

  JsonObject Techs;
  const std::pair<Technique, const char *> Runs[] = {
      {Technique::Maximal, "rv"},
      {Technique::Said, "said"},
      {Technique::Cp, "cp"},
      {Technique::Hb, "hb"},
  };
  for (const auto &[Tech, Key] : Runs) {
    Telemetry::instance().reset();
    DetectionResult R = detectRaces(T, Tech, Options);
    Techs.raw(Key, statsToJson(R.Stats, techniqueName(Tech)));
  }
  Telemetry::setEnabled(false);

  JsonObject Out;
  Out.field("workload", "synthetic-8000").raw("techniques", Techs.str());
  std::string Json = Out.str() + "\n";
  if (Path == "-") {
    std::fputs(Json.c_str(), stdout);
    return 0;
  }
  std::ofstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  File << Json;
  return 0;
}

} // namespace

// Custom main: peel off --stats-json=<path> and --jobs=<n>
// (google-benchmark rejects unknown flags), run the benchmarks, then do
// the one-shot stats dump.
int main(int Argc, char **Argv) {
  std::string StatsJsonPath;
  int Kept = 1;
  for (int I = 1; I < Argc; ++I) {
    constexpr const char *Flag = "--stats-json=";
    constexpr const char *Jobs = "--jobs=";
    if (std::strncmp(Argv[I], Flag, std::strlen(Flag)) == 0)
      StatsJsonPath = Argv[I] + std::strlen(Flag);
    else if (std::strncmp(Argv[I], Jobs, std::strlen(Jobs)) == 0)
      JobsFlag = static_cast<uint32_t>(
          std::strtoul(Argv[I] + std::strlen(Jobs), nullptr, 10));
    else
      Argv[Kept++] = Argv[I];
  }
  Argc = Kept;

  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!StatsJsonPath.empty())
    return dumpStatsJson(StatsJsonPath);
  return 0;
}
