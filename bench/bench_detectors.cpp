//===- bench/bench_detectors.cpp - Detector throughput ------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Scalability of the four techniques with trace length (the paper's
/// claim: HB/CP are fast, the SMT-based detectors remain practical with
/// windowing; our technique generates fewer constraints than Said et
/// al.'s whole-trace consistency and solves faster), plus the quick-check
/// ablation of Section 4.
///
//===----------------------------------------------------------------------===//

#include "analysis/StaticPrune.h"
#include "detect/Atomicity.h"
#include "detect/Deadlock.h"
#include "detect/Detect.h"
#include "support/BuildInfo.h"
#include "lang/Parser.h"
#include "runtime/Interpreter.h"
#include "runtime/Scheduler.h"
#include "workloads/Catalog.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

using namespace rvp;

namespace {

/// --jobs=N (default 0 = one worker per hardware thread), peeled off in
/// main() like --stats-json.
uint32_t JobsFlag = 0;

/// --static-prune: adds the BM_MaximalStaticPrune/BM_MaximalNoPrune pair
/// and switches the --stats-json dump to the pruning A/B comparison.
bool StaticPruneFlag = false;

/// --incremental: adds the BM_*Incremental/BM_*OneShot pairs and switches
/// the --stats-json dump to the incremental-solving A/B comparison (the
/// source of the checked-in BENCH_incremental.json).
bool IncrementalFlag = false;

/// --wcp: adds the BM_MaximalHybridTier/BM_MaximalSmtTier pair and
/// switches the --stats-json dump to the tier A/B comparison (the source
/// of the checked-in BENCH_wcp.json).
bool WcpFlag = false;

Trace makeTrace(uint64_t Events) {
  SyntheticSpec Spec;
  Spec.Name = "bench";
  Spec.Workers = 8;
  Spec.TargetEvents = Events;
  Spec.PlainRaces = 4;
  Spec.CpOnlyRaces = 2;
  Spec.SaidOnlyRaces = 2;
  Spec.HbNotSaidRaces = 2;
  Spec.RvOnlyRaces = 2;
  Spec.QcOnlyPairs = 4;
  Spec.OrderedPairs = 8;
  Spec.AtomicityPairs = 4;
  Spec.DeadlockCycles = 4;
  Spec.Seed = 5;
  return generateSynthetic(Spec);
}

void runDetector(benchmark::State &State, Technique Tech,
                 bool UseQuickCheck = true) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.UseQuickCheck = UseQuickCheck;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;
  size_t Races = 0;
  uint64_t SolverCalls = 0;
  DetectionStats Stats;
  for (auto _ : State) {
    DetectionResult R = detectRaces(T, Tech, Options);
    Races = R.raceCount();
    SolverCalls = R.Stats.SolverCalls;
    Stats = R.Stats;
    benchmark::DoNotOptimize(R);
  }
  State.counters["races"] = static_cast<double>(Races);
  State.counters["solves"] = static_cast<double>(SolverCalls);
  State.counters["windows"] = static_cast<double>(Stats.Windows);
  State.counters["qc"] = static_cast<double>(Stats.QcPassed);
  State.counters["timeouts"] = static_cast<double>(Stats.SolverTimeouts);
  State.counters["events/s"] = benchmark::Counter(
      static_cast<double>(T.size()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Hb(benchmark::State &State) { runDetector(State, Technique::Hb); }
void BM_Cp(benchmark::State &State) { runDetector(State, Technique::Cp); }
void BM_Said(benchmark::State &State) {
  runDetector(State, Technique::Said);
}
void BM_Maximal(benchmark::State &State) {
  runDetector(State, Technique::Maximal);
}
void BM_MaximalNoQuickCheck(benchmark::State &State) {
  runDetector(State, Technique::Maximal, /*UseQuickCheck=*/false);
}

void BM_Atomicity(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;
  size_t Found = 0;
  for (auto _ : State) {
    AtomicityResult R = detectAtomicityViolations(T, Options);
    Found = R.Violations.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["violations"] = static_cast<double>(Found);
}

void BM_Deadlock(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;
  size_t Found = 0;
  for (auto _ : State) {
    DeadlockResult R = detectDeadlocks(T, Options);
    Found = R.Deadlocks.size();
    benchmark::DoNotOptimize(R);
  }
  State.counters["deadlocks"] = static_cast<double>(Found);
}

// ----------------------------------------------------- static prune A/B

/// A MiniRV workload built for the static pruner: per loop iteration the
/// two concurrent threads touch `a` only under lock m (prunable by the
/// common-must-lock rule), t3's and main's `c` accesses are serialized by
/// top-level fork/join (prunable by the interval rule), t1's nested
/// fork/join of t4 orders the `d` accesses (prunable only by the static
/// MHB rule — t4 is always-live to the interval analysis), the read-only
/// `gate` guard on the racy write is a provably constant branch (dropped
/// by the value-range fold), and `b` carries the real races that keep the
/// comparison honest.
std::string prunableSource(uint32_t Iters) {
  std::string N = std::to_string(Iters);
  return "shared a;\n"
         "shared b;\n"
         "shared c;\n"
         "shared d;\n"
         "shared gate = 1;\n"
         "lock m;\n"
         "thread t4 { d = d + 1; }\n"
         "thread t1 {\n"
         "  local i = 0;\n"
         "  while (i < " + N + ") {\n"
         "    sync m { a = a + 1; }\n"
         "    i = i + 1;\n"
         "  }\n"
         "  d = 1;\n"
         "  spawn t4;\n"
         "  join t4;\n"
         "  local h = d;\n"
         "  if (gate == 1) { b = h; }\n"
         "}\n"
         "thread t2 {\n"
         "  local i = 0;\n"
         "  while (i < " + N + ") {\n"
         "    sync m { a = a + 2; }\n"
         "    i = i + 1;\n"
         "  }\n"
         "  b = 2;\n"
         "}\n"
         "thread t3 {\n"
         "  local i = 0;\n"
         "  while (i < " + N + ") {\n"
         "    c = c + 1;\n"
         "    i = i + 1;\n"
         "  }\n"
         "}\n"
         "main {\n"
         "  spawn t1;\n"
         "  spawn t2;\n"
         "  join t1;\n"
         "  join t2;\n"
         "  spawn t3;\n"
         "  join t3;\n"
         "  c = 0;\n"
         "}\n";
}

/// Program, recorded trace, and bound oracle; the oracle holds references
/// into both, so the three live and die together.
struct PruneWorkload {
  PruneWorkload(Program Prog, Trace Tr)
      : P(std::move(Prog)), T(std::move(Tr)), Oracle(P) {
    Oracle.bind(T);
  }

  Program P;
  Trace T;
  StaticPruneOracle Oracle;
};

PruneWorkload &pruneWorkload(uint32_t Iters) {
  static std::map<uint32_t, std::unique_ptr<PruneWorkload>> Cache;
  std::unique_ptr<PruneWorkload> &Slot = Cache[Iters];
  if (!Slot) {
    std::string Error;
    std::optional<Program> P = parseProgram(prunableSource(Iters), Error);
    if (!P) {
      std::fprintf(stderr, "prune workload parse error: %s\n",
                   Error.c_str());
      std::abort();
    }
    Trace T;
    RunResult Result;
    RoundRobinScheduler S(3);
    if (!recordTrace(prunableSource(Iters), T, Result, Error, &S)) {
      std::fprintf(stderr, "prune workload run error: %s\n", Error.c_str());
      std::abort();
    }
    Slot = std::make_unique<PruneWorkload>(std::move(*P), std::move(T));
  }
  return *Slot;
}

void runPruneBench(benchmark::State &State, bool UsePruner) {
  PruneWorkload &W = pruneWorkload(static_cast<uint32_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;
  Options.StaticPruner = UsePruner ? &W.Oracle : nullptr;
  Options.CfFold = UsePruner ? &W.Oracle : nullptr;
  DetectionStats Stats;
  size_t Races = 0;
  for (auto _ : State) {
    W.Oracle.resetStageCounts();
    DetectionResult R = detectRaces(W.T, Technique::Maximal, Options);
    Races = R.raceCount();
    Stats = R.Stats;
    benchmark::DoNotOptimize(R);
  }
  PruneStageCounts Stages = W.Oracle.stageCounts();
  State.counters["races"] = static_cast<double>(Races);
  State.counters["cops"] = static_cast<double>(Stats.Cops);
  State.counters["pruned"] = static_cast<double>(Stats.CopsPrunedStatic);
  State.counters["pruned_interval"] = static_cast<double>(Stages.Interval);
  State.counters["pruned_lockset"] = static_cast<double>(Stages.Lockset);
  State.counters["pruned_mhb"] = static_cast<double>(Stages.Mhb);
  State.counters["solves"] = static_cast<double>(Stats.SolverCalls);
  State.counters["events/s"] = benchmark::Counter(
      static_cast<double>(W.T.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

// ------------------------------------------------ incremental solving A/B

/// Times the maximal detector with and without persistent per-window
/// solver sessions on the same multi-COP synthetic trace. Witnesses stay
/// off so the pair isolates the solving path; byte-identity of the full
/// reports is the IncrementalGolden test's job.
void runIncrementalBench(benchmark::State &State, bool Incremental) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;
  Options.Incremental = Incremental;
  DetectionStats Stats;
  size_t Races = 0;
  for (auto _ : State) {
    DetectionResult R = detectRaces(T, Technique::Maximal, Options);
    Races = R.raceCount();
    Stats = R.Stats;
    benchmark::DoNotOptimize(R);
  }
  State.counters["races"] = static_cast<double>(Races);
  State.counters["solves"] = static_cast<double>(Stats.SolverCalls);
  State.counters["events/s"] = benchmark::Counter(
      static_cast<double>(T.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

// ------------------------------------------------------- WCP tier A/B

/// Times the maximal detector with the solver-only and hybrid tiers on
/// the same multi-COP synthetic trace. Witnesses stay off, so the hybrid
/// tier reports its WCP verdicts directly (trust mode, docs/TIERS.md) —
/// the maximum solver saving; byte-identity of the verified configuration
/// is the WcpGolden test's job.
void runTierBench(benchmark::State &State, DetectTier Tier) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;
  Options.Tier = Tier;
  DetectionStats Stats;
  size_t Races = 0;
  for (auto _ : State) {
    DetectionResult R = detectRaces(T, Technique::Maximal, Options);
    Races = R.raceCount();
    Stats = R.Stats;
    benchmark::DoNotOptimize(R);
  }
  State.counters["races"] = static_cast<double>(Races);
  State.counters["solves"] = static_cast<double>(Stats.SolverCalls);
  State.counters["wcp_pruned"] = static_cast<double>(Stats.WcpPruned);
  State.counters["solves_saved"] =
      static_cast<double>(Stats.WcpShortCircuits);
  State.counters["events/s"] = benchmark::Counter(
      static_cast<double>(T.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}

} // namespace

BENCHMARK(BM_Hb)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cp)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Said)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Maximal)->Arg(2000)->Arg(8000)->Arg(32000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaximalNoQuickCheck)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Atomicity)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Deadlock)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

namespace {

/// One instrumented run per technique on the mid-size workload, written as
/// {"techniques":{"rv":{...},...}}. Complements the timing loop above: the
/// benchmark numbers say how fast, this says where the time and the
/// constraints went.
int dumpStatsJson(const std::string &Path) {
  Telemetry::setEnabled(true);
  Trace T = makeTrace(8000);
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;

  JsonObject Techs;
  const std::pair<Technique, const char *> Runs[] = {
      {Technique::Maximal, "rv"},
      {Technique::Said, "said"},
      {Technique::Cp, "cp"},
      {Technique::Hb, "hb"},
  };
  for (const auto &[Tech, Key] : Runs) {
    Telemetry::instance().reset();
    DetectionResult R = detectRaces(T, Tech, Options);
    Techs.raw(Key, statsToJson(R.Stats, techniqueName(Tech)));
  }
  Telemetry::setEnabled(false);

  JsonObject Out;
  appendRunMetadata(Out);
  Out.field("workload", "synthetic-8000").raw("techniques", Techs.str());
  std::string Json = Out.str() + "\n";
  if (Path == "-") {
    std::fputs(Json.c_str(), stdout);
    return 0;
  }
  std::ofstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  File << Json;
  return 0;
}

/// A/B dump behind --static-prune --stats-json=<path>: every technique
/// runs once without and once with the oracle on the prunable workload
/// (this is the source of the checked-in BENCH_static.json). The race
/// counts must agree — the pruner is sound — so only work and time move.
/// 40 iterations: the unpruned baseline's cf encodings grow superlinearly
/// with the loop count and must stay solvable within the per-COP budget,
/// or the A/B race-count comparison degenerates to unknown-vs-unknown.
int dumpStaticPruneJson(const std::string &Path) {
  constexpr uint32_t Iters = 40;
  Telemetry::setEnabled(true);
  PruneWorkload &W = pruneWorkload(Iters);
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;

  JsonObject Techs;
  const std::pair<Technique, const char *> Runs[] = {
      {Technique::Maximal, "rv"},
      {Technique::Said, "said"},
      {Technique::Cp, "cp"},
      {Technique::Hb, "hb"},
  };
  for (const auto &[Tech, Key] : Runs) {
    Telemetry::instance().reset();
    Options.StaticPruner = nullptr;
    Options.CfFold = nullptr;
    DetectionResult Baseline = detectRaces(W.T, Tech, Options);
    Telemetry::instance().reset();
    Options.StaticPruner = &W.Oracle;
    Options.CfFold = &W.Oracle;
    W.Oracle.resetStageCounts();
    DetectionResult Pruned = detectRaces(W.T, Tech, Options);
    PruneStageCounts Stages = W.Oracle.stageCounts();

    JsonObject StageObj;
    StageObj.field("interval", Stages.Interval)
        .field("lockset", Stages.Lockset)
        .field("mhb", Stages.Mhb);

    JsonObject Cmp;
    Cmp.field("races", static_cast<uint64_t>(Baseline.raceCount()))
        .field("races_agree", Baseline.raceCount() == Pruned.raceCount())
        .field("speedup", Pruned.Stats.Seconds > 0
                              ? Baseline.Stats.Seconds / Pruned.Stats.Seconds
                              : 0.0)
        .raw("prune_stages", StageObj.str())
        .raw("baseline", statsToJson(Baseline.Stats, techniqueName(Tech)))
        .raw("static_prune", statsToJson(Pruned.Stats, techniqueName(Tech)));
    Techs.raw(Key, Cmp.str());
  }
  Telemetry::setEnabled(false);

  JsonObject Out;
  appendRunMetadata(Out);
  Out.field("workload", "prune-loop-" + std::to_string(Iters))
      .field("events", static_cast<uint64_t>(W.T.size()))
      .field("vars_thread_local", W.Oracle.threadLocalVars())
      .raw("techniques", Techs.str());
  std::string Json = Out.str() + "\n";
  if (Path == "-") {
    std::fputs(Json.c_str(), stdout);
    return 0;
  }
  std::ofstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  File << Json;
  return 0;
}

/// A/B dump behind --incremental --stats-json=<path>: the SMT-backed race
/// techniques run once per mode on the multi-COP synthetic workload (this
/// is the source of the checked-in BENCH_incremental.json). Race counts
/// and solver_calls must agree — incremental solving is invisible — so
/// only time moves.
int dumpIncrementalJson(const std::string &Path) {
  Telemetry::setEnabled(true);
  Trace T = makeTrace(32000);
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;

  JsonObject Techs;
  const std::pair<Technique, const char *> Runs[] = {
      {Technique::Maximal, "rv"},
      {Technique::Said, "said"},
  };
  for (const auto &[Tech, Key] : Runs) {
    Telemetry::instance().reset();
    Options.Incremental = false;
    DetectionResult Legacy = detectRaces(T, Tech, Options);
    Telemetry::instance().reset();
    Options.Incremental = true;
    DetectionResult Inc = detectRaces(T, Tech, Options);

    JsonObject Cmp;
    Cmp.field("races", static_cast<uint64_t>(Legacy.raceCount()))
        .field("races_agree", Legacy.raceCount() == Inc.raceCount())
        .field("solver_calls_agree",
               Legacy.Stats.SolverCalls == Inc.Stats.SolverCalls)
        .field("speedup", Inc.Stats.Seconds > 0
                              ? Legacy.Stats.Seconds / Inc.Stats.Seconds
                              : 0.0)
        .raw("one_shot", statsToJson(Legacy.Stats, techniqueName(Tech)))
        .raw("incremental", statsToJson(Inc.Stats, techniqueName(Tech)));
    Techs.raw(Key, Cmp.str());
  }
  Telemetry::setEnabled(false);

  JsonObject Out;
  appendRunMetadata(Out);
  Out.field("workload", "synthetic-32000")
      .field("events", static_cast<uint64_t>(T.size()))
      .field("jobs", static_cast<uint64_t>(JobsFlag))
      .raw("techniques", Techs.str());
  std::string Json = Out.str() + "\n";
  if (Path == "-") {
    std::fputs(Json.c_str(), stdout);
    return 0;
  }
  std::ofstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  File << Json;
  return 0;
}

/// A/B dump behind --wcp --stats-json=<path>: the maximal detector runs
/// once per tier (smt, then hybrid) on the highcop catalog stress row and
/// the prunable loop workload (this is the source of the checked-in
/// BENCH_wcp.json). Witnesses stay off (trust mode — the maximum saving);
/// races must agree anyway on these workloads, and the solver_calls delta
/// is the tier's measurable win.
int dumpWcpJson(const std::string &Path) {
  Telemetry::setEnabled(true);
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;

  JsonObject Workloads;
  auto runPair = [&](const std::string &Key, const Trace &T) {
    Telemetry::instance().reset();
    Options.Tier = DetectTier::Smt;
    DetectionResult Smt = detectRaces(T, Technique::Maximal, Options);
    Telemetry::instance().reset();
    Options.Tier = DetectTier::Hybrid;
    DetectionResult Hybrid = detectRaces(T, Technique::Maximal, Options);

    JsonObject Cmp;
    Cmp.field("events", static_cast<uint64_t>(T.size()))
        .field("races", static_cast<uint64_t>(Smt.raceCount()))
        .field("races_agree", Smt.raceCount() == Hybrid.raceCount())
        .field("solver_calls_smt", Smt.Stats.SolverCalls)
        .field("solver_calls_hybrid", Hybrid.Stats.SolverCalls)
        .field("solver_calls_saved", Hybrid.Stats.WcpShortCircuits)
        .field("wcp_pruned_cops", Hybrid.Stats.WcpPruned)
        .field("speedup", Hybrid.Stats.Seconds > 0
                              ? Smt.Stats.Seconds / Hybrid.Stats.Seconds
                              : 0.0)
        .raw("smt", statsToJson(Smt.Stats, "RV"))
        .raw("hybrid", statsToJson(Hybrid.Stats, "RV"));
    Workloads.raw(Key, Cmp.str());
  };

  std::optional<BenchmarkCase> HighCop = findBenchmark("highcop");
  if (HighCop) {
    Trace T;
    std::string Error;
    if (!benchmarkTrace(*HighCop, T, Error)) {
      std::fprintf(stderr, "highcop workload error: %s\n", Error.c_str());
      return 1;
    }
    runPair("highcop", T);
  }
  runPair("prune-loop-40", pruneWorkload(40).T);
  Telemetry::setEnabled(false);

  JsonObject Out;
  appendRunMetadata(Out);
  Out.field("jobs", static_cast<uint64_t>(JobsFlag))
      .raw("workloads", Workloads.str());
  std::string Json = Out.str() + "\n";
  if (Path == "-") {
    std::fputs(Json.c_str(), stdout);
    return 0;
  }
  std::ofstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  File << Json;
  return 0;
}

} // namespace

// Custom main: peel off --stats-json=<path>, --jobs=<n>, --static-prune,
// --incremental, and --wcp (google-benchmark rejects unknown flags), run
// the benchmarks, then do the one-shot stats dump.
int main(int Argc, char **Argv) {
  std::string StatsJsonPath;
  int Kept = 1;
  for (int I = 1; I < Argc; ++I) {
    constexpr const char *Flag = "--stats-json=";
    constexpr const char *Jobs = "--jobs=";
    if (std::strncmp(Argv[I], Flag, std::strlen(Flag)) == 0)
      StatsJsonPath = Argv[I] + std::strlen(Flag);
    else if (std::strncmp(Argv[I], Jobs, std::strlen(Jobs)) == 0)
      JobsFlag = static_cast<uint32_t>(
          std::strtoul(Argv[I] + std::strlen(Jobs), nullptr, 10));
    else if (std::strcmp(Argv[I], "--static-prune") == 0)
      StaticPruneFlag = true;
    else if (std::strcmp(Argv[I], "--incremental") == 0)
      IncrementalFlag = true;
    else if (std::strcmp(Argv[I], "--wcp") == 0)
      WcpFlag = true;
    else
      Argv[Kept++] = Argv[I];
  }
  Argc = Kept;

  if (StaticPruneFlag) {
    benchmark::RegisterBenchmark("BM_MaximalStaticPrune",
                                 [](benchmark::State &S) {
                                   runPruneBench(S, /*UsePruner=*/true);
                                 })
        ->Arg(10)
        ->Arg(40)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_MaximalNoPrune",
                                 [](benchmark::State &S) {
                                   runPruneBench(S, /*UsePruner=*/false);
                                 })
        ->Arg(10)
        ->Arg(40)
        ->Unit(benchmark::kMillisecond);
  }

  if (IncrementalFlag) {
    benchmark::RegisterBenchmark("BM_MaximalIncremental",
                                 [](benchmark::State &S) {
                                   runIncrementalBench(S, /*Incremental=*/true);
                                 })
        ->Arg(2000)
        ->Arg(8000)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_MaximalOneShot",
                                 [](benchmark::State &S) {
                                   runIncrementalBench(S,
                                                       /*Incremental=*/false);
                                 })
        ->Arg(2000)
        ->Arg(8000)
        ->Unit(benchmark::kMillisecond);
  }

  if (WcpFlag) {
    benchmark::RegisterBenchmark("BM_MaximalHybridTier",
                                 [](benchmark::State &S) {
                                   runTierBench(S, DetectTier::Hybrid);
                                 })
        ->Arg(2000)
        ->Arg(8000)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("BM_MaximalSmtTier",
                                 [](benchmark::State &S) {
                                   runTierBench(S, DetectTier::Smt);
                                 })
        ->Arg(2000)
        ->Arg(8000)
        ->Unit(benchmark::kMillisecond);
  }

  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!StatsJsonPath.empty()) {
    if (WcpFlag)
      return dumpWcpJson(StatsJsonPath);
    if (IncrementalFlag)
      return dumpIncrementalJson(StatsJsonPath);
    return StaticPruneFlag ? dumpStaticPruneJson(StatsJsonPath)
                           : dumpStatsJson(StatsJsonPath);
  }
  return 0;
}
