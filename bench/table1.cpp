//===- bench/table1.cpp - Reproduce Table 1 ----------------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table 1 of the paper: per benchmark, the trace metrics
/// (#Thrd, #Event, #RW, #Sync, #Br), the number of potential races passing
/// the quick check (QC), the real races found by RV (this paper), Said et
/// al., CP, and HB, plus the WCP vector-clock tier (docs/TIERS.md), and
/// the per-technique detection times.
///
///   $ table1 [--window=10000] [--budget=10] [--solver=idl]
///            [--group=all|example|contest|grande|real] [--bench=name]
///            [--stats-json=out.json]
///
/// Absolute numbers differ from the paper (the real systems are replaced
/// by calibrated synthetic workloads; see DESIGN.md), but the shape —
/// RV ⊇ Said/CP/HB everywhere, the ftpserver inversion, derby's RV gap,
/// HB/CP fastest and Said slowest — reproduces. EXPERIMENTS.md records
/// paper-vs-measured values.
///
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"
#include "support/CommandLine.h"
#include "support/BuildInfo.h"
#include "workloads/Catalog.h"

#include <cstdio>
#include <fstream>

using namespace rvp;

int main(int Argc, const char **Argv) {
  OptionParser Options("Reproduce Table 1 of the paper");
  Options.addOption("window", "window size in events", "10000");
  Options.addOption("budget", "per-COP solver budget in seconds", "10");
  Options.addOption("solver", "SMT backend: idl or z3", "idl");
  Options.addOption("jobs",
                    "solver worker threads (0 = one per hardware thread)",
                    "0");
  Options.addOption("group", "row group filter", "all");
  Options.addOption("bench", "single benchmark name", "");
  Options.addOption("stats-json",
                    "write per-benchmark per-technique stats JSON "
                    "('-' for stdout)",
                    "");
  if (!Options.parse(Argc, Argv))
    return 1;

  std::string StatsJsonPath = Options.getString("stats-json", "");
  if (!StatsJsonPath.empty())
    Telemetry::setEnabled(true);
  std::string JsonRows;

  DetectorOptions Detect;
  Detect.WindowSize = static_cast<uint32_t>(Options.getInt("window", 10000));
  Detect.PerCopBudgetSeconds = Options.getDouble("budget", 10);
  Detect.SolverName = Options.getString("solver", "idl");
  Detect.Jobs = static_cast<uint32_t>(Options.getInt("jobs", 0));
  Detect.CollectWitnesses = false; // match the paper's timing setup
  // Witnesses are off, so the hybrid tier would report WCP verdicts
  // unverified (trust mode) and the RV column would no longer be the
  // paper's maximal detector. Pin the solver tier for the paper columns;
  // WCP gets its own column below via the vc tier.
  Detect.Tier = DetectTier::Smt;

  std::string Group = Options.getString("group", "all");
  std::string Only = Options.getString("bench", "");

  std::printf("%-11s %6s %8s %8s %7s %7s | %4s %4s %5s %4s %4s %4s |"
              " %8s %8s %8s %8s %8s\n",
              "Program", "#Thrd", "#Event", "#RW", "#Sync", "#Br", "QC",
              "RV", "Said", "CP", "HB", "WCP", "RV(s)", "Said(s)", "CP(s)",
              "HB(s)", "WCP(s)");

  uint64_t TotalRv = 0, TotalSaid = 0, TotalCp = 0, TotalHb = 0,
           TotalWcp = 0;
  for (const BenchmarkCase &Case : table1Benchmarks()) {
    if (Group != "all" && Case.Group != Group)
      continue;
    if (!Only.empty() && Case.Name != Only)
      continue;

    Trace T;
    std::string Error;
    if (!benchmarkTrace(Case, T, Error)) {
      std::fprintf(stderr, "%s: %s\n", Case.Name.c_str(), Error.c_str());
      continue;
    }
    TraceStats Stats = T.stats();

    // One telemetry run per technique: each snapshot covers exactly one
    // detectRaces call.
    auto runTechnique = [&](Technique Tech) {
      if (Telemetry::enabled())
        Telemetry::instance().reset();
      return detectRaces(T, Tech, Detect);
    };
    DetectionResult Rv = runTechnique(Technique::Maximal);
    DetectionResult Said = runTechnique(Technique::Said);
    DetectionResult Cp = runTechnique(Technique::Cp);
    DetectionResult Hb = runTechnique(Technique::Hb);
    // The WCP column: the linear-time vector-clock tier, no solver at
    // all (docs/TIERS.md). Weakly sound like CP/HB, so RV ⊇ WCP ⊇ CP.
    if (Telemetry::enabled())
      Telemetry::instance().reset();
    DetectorOptions VcDetect = Detect;
    VcDetect.Tier = DetectTier::Vc;
    DetectionResult Wcp = detectRaces(T, Technique::Maximal, VcDetect);

    std::printf("%-11s %6u %8llu %8llu %7llu %7llu | %4llu %4zu %5zu %4zu "
                "%4zu %4zu | %8.2f %8.2f %8.2f %8.2f %8.2f\n",
                Case.Name.c_str(), Stats.Threads,
                static_cast<unsigned long long>(Stats.Events),
                static_cast<unsigned long long>(Stats.ReadsWrites),
                static_cast<unsigned long long>(Stats.Syncs),
                static_cast<unsigned long long>(Stats.Branches),
                static_cast<unsigned long long>(Rv.Stats.QcPassed),
                Rv.raceCount(), Said.raceCount(), Cp.raceCount(),
                Hb.raceCount(), Wcp.raceCount(), Rv.Stats.Seconds,
                Said.Stats.Seconds, Cp.Stats.Seconds, Hb.Stats.Seconds,
                Wcp.Stats.Seconds);
    if (Case.Group == "real") {
      TotalRv += Rv.raceCount();
      TotalSaid += Said.raceCount();
      TotalCp += Cp.raceCount();
      TotalHb += Hb.raceCount();
      TotalWcp += Wcp.raceCount();
    }
    if (!StatsJsonPath.empty()) {
      auto techJson = [](const DetectionResult &R, const char *Name) {
        JsonObject O;
        O.field("races", static_cast<uint64_t>(R.raceCount()))
            .raw("stats", statsToJson(R.Stats, Name));
        return O.str();
      };
      JsonObject Techs;
      Techs.raw("rv", techJson(Rv, "RV"))
          .raw("said", techJson(Said, "Said"))
          .raw("cp", techJson(Cp, "CP"))
          .raw("hb", techJson(Hb, "HB"))
          .raw("wcp", techJson(Wcp, "WCP"));
      JsonObject Row;
      Row.field("name", Case.Name)
          .field("group", Case.Group)
          .field("threads", static_cast<uint64_t>(Stats.Threads))
          .field("events", static_cast<uint64_t>(Stats.Events))
          .field("reads_writes", static_cast<uint64_t>(Stats.ReadsWrites))
          .field("syncs", static_cast<uint64_t>(Stats.Syncs))
          .field("branches", static_cast<uint64_t>(Stats.Branches))
          .field("qc_passed", Rv.Stats.QcPassed)
          .raw("techniques", Techs.str());
      if (!JsonRows.empty())
        JsonRows += ",";
      JsonRows += Row.str();
    }
  }
  if (Group == "all" || Group == "real")
    std::printf("%-11s %6s %8s %8s %7s %7s | %4s %4llu %5llu %4llu %4llu "
                "%4llu |\n",
                "real total", "", "", "", "", "", "",
                static_cast<unsigned long long>(TotalRv),
                static_cast<unsigned long long>(TotalSaid),
                static_cast<unsigned long long>(TotalCp),
                static_cast<unsigned long long>(TotalHb),
                static_cast<unsigned long long>(TotalWcp));
  if (!StatsJsonPath.empty()) {
    JsonObject Out;
    appendRunMetadata(Out);
    Out.raw("benchmarks", "[" + JsonRows + "]");
    std::string Json = Out.str() + "\n";
    if (StatsJsonPath == "-") {
      std::fputs(Json.c_str(), stdout);
    } else {
      std::ofstream File(StatsJsonPath);
      if (!File) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     StatsJsonPath.c_str());
        return 1;
      }
      File << Json;
    }
  }
  return 0;
}
