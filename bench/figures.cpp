//===- bench/figures.cpp - Regenerate the paper's figures --------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates each figure of the paper as executable output:
///
///   --fig=1  the Figure 1 program and its race verdicts
///   --fig=2  the Figure 2 cases and their verdicts
///   --fig=3  the event vocabulary (Figure 3)
///   --fig=4  the recorded trace of Figure 1 (Figure 4)
///   --fig=5  the constraint modeling of that trace (Figure 5)
///   --fig=6  the Section 4 array-indexing example
///
/// Default: all figures in order.
///
//===----------------------------------------------------------------------===//

#include "detect/Closure.h"
#include "detect/Detect.h"
#include "detect/RaceEncoder.h"
#include "runtime/Interpreter.h"
#include "support/CommandLine.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "workloads/Programs.h"

#include <cstdio>

using namespace rvp;

namespace {

/// The Figure 4 trace with the paper's line numbers as locations; event
/// id I corresponds to paper line I+1.
Trace figure4Trace() {
  TraceBuilder B;
  B.fork("t1", "t2", "1");
  B.acquire("t1", "l", "2");
  B.write("t1", "x", 1, "3");
  B.write("t1", "y", 1, "4");
  B.release("t1", "l", "5");
  B.begin("t2", "6");
  B.acquire("t2", "l", "7");
  B.read("t2", "y", 1, "8");
  B.release("t2", "l", "9");
  B.read("t2", "x", 1, "10");
  B.branch("t2", "11");
  B.write("t2", "z", 1, "12");
  B.end("t2", "13");
  B.join("t1", "t2", "14");
  B.read("t1", "z", 1, "15");
  return B.build();
}

std::string paperVarName(OrderVar Var) {
  if (Var > 1000) // the synthetic root of the MHB encoding
    return "O_root";
  return "O" + std::to_string(Var + 1);
}

void figure1() {
  std::printf("=== Figure 1: example program with a race (3,10) =====\n");
  std::printf("%s\n", figure1Program().c_str());
  Trace T = figure4Trace();
  for (Technique Tech : {Technique::Hb, Technique::Cp, Technique::Said,
                         Technique::Maximal}) {
    DetectionResult R = detectRaces(T, Tech);
    std::printf("%-5s:", techniqueName(Tech));
    if (R.Races.empty())
      std::printf(" no races\n");
    for (const RaceReport &Race : R.Races)
      std::printf(" race (%s,%s) on %s\n", Race.LocFirst.c_str(),
                  Race.LocSecond.c_str(), Race.Variable.c_str());
  }
  std::printf("\n");
}

void figure2() {
  std::printf("=== Figure 2: control flow distinguishes equal traces ===\n");
  TraceBuilder Case1;
  Case1.write("t1", "x", 1, "1");
  Case1.write("t1", "y", 1, "2", true);
  Case1.read("t2", "y", 1, "3", true);
  Case1.read("t2", "x", 1, "4");
  Trace T1 = Case1.build();
  DetectionResult R1 = detectRaces(T1, Technique::Maximal);
  std::printf("case 1 (r1 = y):       RV %s\n",
              R1.hasRaceAt("1", "4") ? "reports the race (1,4)"
                                     : "reports no race");

  TraceBuilder Case2;
  Case2.write("t1", "x", 1, "1");
  Case2.write("t1", "y", 1, "2", true);
  Case2.read("t2", "y", 1, "3", true);
  Case2.branch("t2", "3");
  Case2.read("t2", "x", 1, "4");
  Trace T2 = Case2.build();
  DetectionResult R2 = detectRaces(T2, Technique::Maximal);
  std::printf("case 2 (while(y==0);): RV %s\n\n",
              R2.hasRaceAt("1", "4") ? "reports the race (1,4)"
                                     : "reports no race");
}

void figure3() {
  std::printf("=== Figure 3: event types in a multithreaded execution ===\n");
  std::printf("  begin(t)      first event of thread t\n");
  std::printf("  end(t)        last event of thread t\n");
  std::printf("  read(t,x,v)   read value v from x\n");
  std::printf("  write(t,x,v)  write value v to x\n");
  std::printf("  acquire(t,l)  acquire lock l\n");
  std::printf("  release(t,l)  release lock l\n");
  std::printf("  fork(t,t')    fork a new thread t'\n");
  std::printf("  join(t,t')    block until t' terminates\n");
  std::printf("  branch(t)     jump to a new operation  [novel]\n\n");
}

void figure4() {
  std::printf("=== Figure 4: the trace of Figure 1's execution =====\n");
  Trace T = figure4Trace();
  for (EventId Id = 0; Id < T.size(); ++Id)
    std::printf("%3u. %s\n", Id + 1, toString(T[Id]).c_str());
  std::printf("\n");
}

void figure5() {
  std::printf("=== Figure 5: constraint modeling of the Figure 4 trace ===\n");
  Trace T = figure4Trace();
  Span S = T.fullSpan();
  EventClosure Mhb(T, S, ClosureConfig::mhb());
  RaceEncoder Encoder(T, S, Mhb, T.initialValues());

  FormulaBuilder FB;
  std::printf("(A) MHB constraints:\n    %s\n\n",
              FB.toString(Encoder.encodeMhb(FB), paperVarName).c_str());
  std::printf("(B) locking constraints:\n    %s\n\n",
              FB.toString(Encoder.encodeLock(FB), paperVarName).c_str());

  // (C) race constraints for COP(3,10) and COP(12,15); the Oa := Ob
  // substitution merges the pair onto one order variable.
  FormulaBuilder FB1;
  NodeRef Race1 = Encoder.encodeMaximalRace(FB1, 2, 9);
  std::printf("(C) race constraints for COP(3,10), with O3 := O10:\n    %s\n",
              FB1.toString(Race1, paperVarName).c_str());
  DetectionResult R = detectRaces(T, Technique::Maximal);
  std::printf("    solver: %s\n\n",
              R.hasRaceAt("3", "10") ? "satisfiable -> (3,10) is a race"
                                     : "unexpected");

  FormulaBuilder FB2;
  NodeRef Race2 = Encoder.encodeMaximalRace(FB2, 11, 14);
  std::printf("    race constraints for COP(12,15), with O12 := O15:\n"
              "    %s\n",
              FB2.toString(Race2, paperVarName).c_str());
  std::printf("    solver: %s\n\n",
              R.hasRaceAt("12", "15") ? "unexpected"
                                      : "unsatisfiable -> not a race");
}

void figure6() {
  std::printf("=== Section 4 example: implicit data flow via array index ===\n");
  std::string Source = R"(
shared a[2]; shared x; lock l;
thread t2 { sync l { x = 1; } a[0] = 1; }
main { spawn t2; sync l { a[x] = 2; } join t2; }
)";
  std::printf("%s\n", Source.c_str());
  Trace T;
  RunResult Run;
  std::string Error;
  RoundRobinScheduler S(16); // main first: a[x] uses x == 0
  if (!recordTrace(Source, T, Run, Error, &S)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return;
  }
  std::printf("%s", writeTraceText(T).c_str());
  DetectionResult R = detectRaces(T, Technique::Maximal);
  bool RaceOnArray = false;
  for (const RaceReport &Race : R.Races)
    RaceOnArray |= Race.Variable == "a[0]";
  std::printf("=> RV %s: rescheduling the write next to a[0]=1 would "
              "change the index a[x] uses\n\n",
              RaceOnArray ? "unexpectedly reports (2,7)"
                          : "correctly reports no race on a[0]");
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Options("Regenerate the paper's figures");
  Options.addOption("fig", "figure number 1-6 (default: all)", "");
  if (!Options.parse(Argc, Argv))
    return 1;
  int64_t Fig = Options.getInt("fig", 0);
  if (Fig == 0 || Fig == 1)
    figure1();
  if (Fig == 0 || Fig == 2)
    figure2();
  if (Fig == 0 || Fig == 3)
    figure3();
  if (Fig == 0 || Fig == 4)
    figure4();
  if (Fig == 0 || Fig == 5)
    figure5();
  if (Fig == 0 || Fig == 6)
    figure6();
  return 0;
}
