//===- bench/bench_window.cpp - Window size ablation --------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The windowing strategy of Section 4: sweeping the window size on a
/// fixed long trace shows the trade-off the paper describes — small
/// windows are fast but can miss races whose events fall into different
/// windows; large windows find everything but solve bigger constraint
/// systems. (The generator used here intentionally does NOT align
/// patterns to window boundaries, so losses are visible.)
///
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

using namespace rvp;

namespace {

const Trace &sharedTrace() {
  static Trace T = [] {
    SyntheticSpec Spec;
    Spec.Name = "window-bench";
    Spec.Workers = 8;
    Spec.TargetEvents = 24000;
    Spec.PlainRaces = 8;
    Spec.CpOnlyRaces = 4;
    Spec.SaidOnlyRaces = 4;
    Spec.HbNotSaidRaces = 4;
    Spec.RvOnlyRaces = 4;
    Spec.QcOnlyPairs = 4;
    Spec.OrderedPairs = 8;
    Spec.AlignWindow = 0;    // allow patterns to straddle boundaries
    Spec.PatternSpread = 150; // stretch each race across ~600 events
    Spec.Seed = 9;
    return generateSynthetic(Spec);
  }();
  return T;
}

void BM_WindowSweep(benchmark::State &State) {
  const Trace &T = sharedTrace();
  DetectorOptions Options;
  Options.WindowSize = static_cast<uint32_t>(State.range(0));
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  size_t Races = 0;
  for (auto _ : State) {
    DetectionResult R = detectRaces(T, Technique::Maximal, Options);
    Races = R.raceCount();
    benchmark::DoNotOptimize(R);
  }
  State.counters["races"] = static_cast<double>(Races);
}

} // namespace

BENCHMARK(BM_WindowSweep)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2500)
    ->Arg(5000)
    ->Arg(10000)
    ->Arg(24000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
