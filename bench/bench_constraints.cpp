//===- bench/bench_constraints.cpp - Encoding ablations ------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Ablations of the constraint encoding (Section 4):
///
///  * the `Oa := Ob` substitution vs. the naive explicit-adjacency
///    encoding (formula size and end-to-end detection time);
///  * maximal (control-flow) constraints vs. Said et al.'s whole-trace
///    read-write consistency (constraint counts — the reason our
///    technique solves faster);
///  * raw constraint-generation throughput.
///
//===----------------------------------------------------------------------===//

#include "detect/Closure.h"
#include "detect/Cop.h"
#include "detect/Detect.h"
#include "detect/RaceEncoder.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

using namespace rvp;

namespace {

Trace makeTrace(uint64_t Events) {
  SyntheticSpec Spec;
  Spec.Name = "encode-bench";
  Spec.Workers = 6;
  Spec.TargetEvents = Events;
  Spec.PlainRaces = 4;
  Spec.RvOnlyRaces = 4;
  Spec.SaidOnlyRaces = 4;
  Spec.OrderedPairs = 4;
  Spec.Seed = 17;
  return generateSynthetic(Spec);
}

void BM_DetectSubstitution(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.SubstituteRaceVars = true;
  Options.CollectWitnesses = false;
  for (auto _ : State) {
    DetectionResult R = detectRaces(T, Technique::Maximal, Options);
    benchmark::DoNotOptimize(R);
  }
}

void BM_DetectNaiveAdjacency(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.SubstituteRaceVars = false;
  Options.CollectWitnesses = false;
  for (auto _ : State) {
    DetectionResult R = detectRaces(T, Technique::Maximal, Options);
    benchmark::DoNotOptimize(R);
  }
}

/// Formula sizes: maximal vs. Said encoding for the same COPs.
void BM_FormulaSize(benchmark::State &State) {
  Trace T = makeTrace(2000);
  Span S = T.fullSpan();
  EventClosure Mhb(T, S, ClosureConfig::mhb());
  RaceEncoder Encoder(T, S, Mhb, T.initialValues());
  std::vector<Cop> Cops = collectCops(T, S);
  double MaximalNodes = 0, SaidNodes = 0;
  size_t Queries = 0;
  for (auto _ : State) {
    MaximalNodes = SaidNodes = 0;
    Queries = 0;
    for (const Cop &C : Cops) {
      if (Queries >= 16)
        break;
      ++Queries;
      FormulaBuilder FbMaximal;
      Encoder.encodeMaximalRace(FbMaximal, C.First, C.Second);
      MaximalNodes += static_cast<double>(FbMaximal.numNodes());
      FormulaBuilder FbSaid;
      Encoder.encodeSaidRace(FbSaid, C.First, C.Second);
      SaidNodes += static_cast<double>(FbSaid.numNodes());
    }
    benchmark::DoNotOptimize(MaximalNodes);
  }
  State.counters["maximal_nodes/query"] =
      MaximalNodes / static_cast<double>(Queries);
  State.counters["said_nodes/query"] =
      SaidNodes / static_cast<double>(Queries);
}

/// Raw encoding throughput (no solving).
void BM_EncodeThroughput(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  Span S = T.fullSpan();
  EventClosure Mhb(T, S, ClosureConfig::mhb());
  RaceEncoder Encoder(T, S, Mhb, T.initialValues());
  std::vector<Cop> Cops = collectCops(T, S);
  if (Cops.empty()) {
    State.SkipWithError("no COPs in the trace");
    return;
  }
  size_t Next = 0;
  for (auto _ : State) {
    const Cop &C = Cops[Next++ % Cops.size()];
    FormulaBuilder FB;
    NodeRef Root = Encoder.encodeMaximalRace(FB, C.First, C.Second);
    benchmark::DoNotOptimize(Root);
  }
}

} // namespace

BENCHMARK(BM_DetectSubstitution)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DetectNaiveAdjacency)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FormulaSize)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EncodeThroughput)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
