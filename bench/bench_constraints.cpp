//===- bench/bench_constraints.cpp - Encoding ablations ------------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Ablations of the constraint encoding (Section 4):
///
///  * the `Oa := Ob` substitution vs. the naive explicit-adjacency
///    encoding (formula size and end-to-end detection time);
///  * maximal (control-flow) constraints vs. Said et al.'s whole-trace
///    read-write consistency (constraint counts — the reason our
///    technique solves faster);
///  * raw constraint-generation throughput;
///  * cone-of-influence slicing vs. the full window encoding
///    (docs/ENCODER.md) on the high-COP catalog row, behind the
///    `--slice` / `--no-slice` A/B flags. Either flag also writes the
///    comparison to BENCH_encoding.json (override with
///    `--stats-json=<path>`):
///
///      bench_constraints --slice --no-slice --benchmark_filter=Cone
///                        --stats-json=BENCH_encoding.json
///
//===----------------------------------------------------------------------===//

#include "detect/Closure.h"
#include "detect/Cop.h"
#include "detect/Detect.h"
#include "detect/RaceEncoder.h"
#include "support/BuildInfo.h"
#include "support/Stats.h"
#include "support/Telemetry.h"
#include "workloads/Catalog.h"
#include "workloads/Synthetic.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

using namespace rvp;

namespace {

Trace makeTrace(uint64_t Events) {
  SyntheticSpec Spec;
  Spec.Name = "encode-bench";
  Spec.Workers = 6;
  Spec.TargetEvents = Events;
  Spec.PlainRaces = 4;
  Spec.RvOnlyRaces = 4;
  Spec.SaidOnlyRaces = 4;
  Spec.OrderedPairs = 4;
  Spec.Seed = 17;
  return generateSynthetic(Spec);
}

void BM_DetectSubstitution(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.SubstituteRaceVars = true;
  Options.CollectWitnesses = false;
  for (auto _ : State) {
    DetectionResult R = detectRaces(T, Technique::Maximal, Options);
    benchmark::DoNotOptimize(R);
  }
}

void BM_DetectNaiveAdjacency(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  DetectorOptions Options;
  Options.SubstituteRaceVars = false;
  Options.CollectWitnesses = false;
  for (auto _ : State) {
    DetectionResult R = detectRaces(T, Technique::Maximal, Options);
    benchmark::DoNotOptimize(R);
  }
}

/// Formula sizes: maximal vs. Said encoding for the same COPs.
void BM_FormulaSize(benchmark::State &State) {
  Trace T = makeTrace(2000);
  Span S = T.fullSpan();
  EventClosure Mhb(T, S, ClosureConfig::mhb());
  RaceEncoder Encoder(T, S, Mhb, T.initialValues());
  std::vector<Cop> Cops = collectCops(T, S);
  double MaximalNodes = 0, SaidNodes = 0;
  size_t Queries = 0;
  for (auto _ : State) {
    MaximalNodes = SaidNodes = 0;
    Queries = 0;
    for (const Cop &C : Cops) {
      if (Queries >= 16)
        break;
      ++Queries;
      FormulaBuilder FbMaximal;
      Encoder.encodeMaximalRace(FbMaximal, C.First, C.Second);
      MaximalNodes += static_cast<double>(FbMaximal.numNodes());
      FormulaBuilder FbSaid;
      Encoder.encodeSaidRace(FbSaid, C.First, C.Second);
      SaidNodes += static_cast<double>(FbSaid.numNodes());
    }
    benchmark::DoNotOptimize(MaximalNodes);
  }
  State.counters["maximal_nodes/query"] =
      MaximalNodes / static_cast<double>(Queries);
  State.counters["said_nodes/query"] =
      SaidNodes / static_cast<double>(Queries);
}

/// Raw encoding throughput (no solving).
void BM_EncodeThroughput(benchmark::State &State) {
  Trace T = makeTrace(static_cast<uint64_t>(State.range(0)));
  Span S = T.fullSpan();
  EventClosure Mhb(T, S, ClosureConfig::mhb());
  RaceEncoder Encoder(T, S, Mhb, T.initialValues());
  std::vector<Cop> Cops = collectCops(T, S);
  if (Cops.empty()) {
    State.SkipWithError("no COPs in the trace");
    return;
  }
  size_t Next = 0;
  for (auto _ : State) {
    const Cop &C = Cops[Next++ % Cops.size()];
    FormulaBuilder FB;
    NodeRef Root = Encoder.encodeMaximalRace(FB, C.First, C.Second);
    benchmark::DoNotOptimize(Root);
  }
}

//===----------------------------------------------------------------------===//
// Cone-slicing A/B (--slice / --no-slice)
//===----------------------------------------------------------------------===//

uint32_t JobsFlag = 1;
bool SliceFlag = false;
bool NoSliceFlag = false;

/// The high-COP catalog row: many pattern threads, few variables, so each
/// window carries a heavy per-COP encode load whose cones are tiny next to
/// the window (see workloads/Catalog.cpp).
const Trace &highcopTrace() {
  static Trace T = [] {
    auto Case = findBenchmark("highcop");
    Trace Built;
    std::string Error;
    if (!Case || !benchmarkTrace(*Case, Built, Error)) {
      std::fprintf(stderr, "error: cannot build bench:highcop: %s\n",
                   Error.c_str());
      std::exit(1);
    }
    return Built;
  }();
  return T;
}

/// One window encoding over the full highcop span, shared by a sliced and
/// an unsliced encoder — exactly the pair the detector's witness
/// re-derivation uses.
struct SliceAbContext {
  const Trace &T;
  Span S;
  EventClosure Mhb;
  RaceEncoder Sliced;
  RaceEncoder Unsliced;
  std::vector<Cop> Cops;

  SliceAbContext()
      : T(highcopTrace()), S(T.fullSpan()), Mhb(T, S, ClosureConfig::mhb()),
        Sliced(T, S, Mhb, T.initialValues()),
        Unsliced(Sliced.sharedWindowEncoding(),
                 [] {
                   EncoderOptions O;
                   O.Slice = false;
                   return O;
                 }()),
        Cops(collectCops(T, S)) {}
};

SliceAbContext &sliceAb() {
  static SliceAbContext Ctx;
  return Ctx;
}

void runConeEncodeBench(benchmark::State &State, bool Slice) {
  SliceAbContext &Ctx = sliceAb();
  if (Ctx.Cops.empty()) {
    State.SkipWithError("no COPs in the trace");
    return;
  }
  const RaceEncoder &Encoder = Slice ? Ctx.Sliced : Ctx.Unsliced;
  size_t Next = 0;
  uint64_t Atoms = 0, ConeEvents = 0;
  for (auto _ : State) {
    const Cop &C = Ctx.Cops[Next++ % Ctx.Cops.size()];
    FormulaBuilder FB;
    EncodeStats Stats;
    NodeRef Root = Encoder.encodeMaximalRace(FB, C.First, C.Second, &Stats);
    Atoms = Stats.SlicedAtoms;
    ConeEvents = Stats.ConeEvents;
    benchmark::DoNotOptimize(Root);
  }
  State.counters["window_events"] = static_cast<double>(Ctx.S.size());
  if (Slice) {
    State.counters["atoms/cop"] = static_cast<double>(Atoms);
    State.counters["cone_events"] = static_cast<double>(ConeEvents);
  }
}

/// A/B dump behind --slice/--no-slice (this is the source of the
/// checked-in BENCH_encoding.json): per-COP emitted atoms and encode time
/// for the sliced vs. the full window encoding, plus end-to-end detect
/// runs per SMT-backed technique. Decisions must agree — slicing is
/// equisatisfiable — so only formula size and time move.
int dumpEncodingJson(const std::string &Path) {
  SliceAbContext &Ctx = sliceAb();
  const WindowEncoding &Enc = Ctx.Sliced.windowEncoding();

  // The unsliced emission is COP-invariant: every call walks all of
  // MhbEdges and LockConstraints.
  uint64_t UnslicedAtoms = Enc.MhbEdges.size();
  for (const WindowEncoding::LockConstraint &Lc : Enc.LockConstraints)
    UnslicedAtoms += Lc.Mutex ? 2 : 1;

  using Clock = std::chrono::steady_clock;
  const size_t Queries = std::min<size_t>(Ctx.Cops.size(), 48);
  uint64_t SlicedAtoms = 0, ConeEvents = 0, CacheHits = 0;
  uint64_t SlicedNodes = 0, UnslicedNodes = 0;
  double SlicedSeconds = 0, UnslicedSeconds = 0;
  for (size_t I = 0; I < Queries; ++I) {
    const Cop &C = Ctx.Cops[I];
    {
      FormulaBuilder FB;
      EncodeStats Stats;
      Clock::time_point Start = Clock::now();
      Ctx.Sliced.encodeMaximalRace(FB, C.First, C.Second, &Stats);
      SlicedSeconds += std::chrono::duration<double>(Clock::now() - Start)
                           .count();
      SlicedAtoms += Stats.SlicedAtoms;
      ConeEvents += Stats.ConeEvents;
      CacheHits += Stats.CacheHit ? 1 : 0;
      SlicedNodes += FB.numNodes();
    }
    {
      FormulaBuilder FB;
      Clock::time_point Start = Clock::now();
      Ctx.Unsliced.encodeMaximalRace(FB, C.First, C.Second);
      UnslicedSeconds += std::chrono::duration<double>(Clock::now() - Start)
                             .count();
      UnslicedNodes += FB.numNodes();
    }
  }
  double N = static_cast<double>(Queries ? Queries : 1);

  JsonObject SlicedJson;
  SlicedJson.field("seconds", SlicedSeconds)
      .field("atoms_per_cop", static_cast<double>(SlicedAtoms) / N)
      .field("cone_events_per_cop", static_cast<double>(ConeEvents) / N)
      .field("nodes_per_cop", static_cast<double>(SlicedNodes) / N)
      .field("skeleton_cache_hits", CacheHits);
  JsonObject UnslicedJson;
  UnslicedJson.field("seconds", UnslicedSeconds)
      .field("atoms_per_cop", static_cast<double>(UnslicedAtoms))
      .field("nodes_per_cop", static_cast<double>(UnslicedNodes) / N);
  JsonObject Encode;
  Encode.field("window_events", static_cast<uint64_t>(Ctx.S.size()))
      .field("cops", static_cast<uint64_t>(Queries))
      .raw("sliced", SlicedJson.str())
      .raw("unsliced", UnslicedJson.str())
      .field("atom_reduction",
             SlicedAtoms ? static_cast<double>(UnslicedAtoms) * N /
                               static_cast<double>(SlicedAtoms)
                         : 0.0);

  // End-to-end: the detector with and without slicing, per technique.
  Telemetry::setEnabled(true);
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;
  Options.Jobs = JobsFlag;
  JsonObject Techs;
  const std::pair<Technique, const char *> Runs[] = {
      {Technique::Maximal, "rv"},
      {Technique::Said, "said"},
  };
  for (const auto &[Tech, Key] : Runs) {
    Telemetry::instance().reset();
    Options.Slice = true;
    DetectionResult SlicedRun = detectRaces(Ctx.T, Tech, Options);
    std::string SlicedStats = statsToJson(SlicedRun.Stats, techniqueName(Tech));
    Telemetry::instance().reset();
    Options.Slice = false;
    DetectionResult FullRun = detectRaces(Ctx.T, Tech, Options);

    JsonObject Cmp;
    Cmp.field("races", static_cast<uint64_t>(SlicedRun.raceCount()))
        .field("races_agree", SlicedRun.raceCount() == FullRun.raceCount())
        .field("speedup", SlicedRun.Stats.Seconds > 0
                              ? FullRun.Stats.Seconds / SlicedRun.Stats.Seconds
                              : 0.0)
        .raw("sliced", SlicedStats)
        .raw("unsliced", statsToJson(FullRun.Stats, techniqueName(Tech)));
    Techs.raw(Key, Cmp.str());
  }
  Telemetry::setEnabled(false);

  JsonObject Out;
  appendRunMetadata(Out);
  Out.field("workload", "highcop")
      .field("events", static_cast<uint64_t>(Ctx.T.size()))
      .field("jobs", static_cast<uint64_t>(JobsFlag))
      .raw("encode", Encode.str())
      .raw("techniques", Techs.str());
  std::string Json = Out.str() + "\n";
  if (Path == "-") {
    std::fputs(Json.c_str(), stdout);
    return 0;
  }
  std::ofstream File(Path);
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  File << Json;
  return 0;
}

} // namespace

BENCHMARK(BM_DetectSubstitution)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DetectNaiveAdjacency)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FormulaSize)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EncodeThroughput)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Custom main: peel off --slice, --no-slice, --jobs=<n>, and
// --stats-json=<path> (google-benchmark rejects unknown flags), register
// the cone A/B benchmarks the flags ask for, run, then write the A/B dump
// (default BENCH_encoding.json when either slicing flag is present).
int main(int Argc, char **Argv) {
  std::string StatsJsonPath;
  int Kept = 1;
  for (int I = 1; I < Argc; ++I) {
    constexpr const char *Flag = "--stats-json=";
    constexpr const char *Jobs = "--jobs=";
    if (std::strncmp(Argv[I], Flag, std::strlen(Flag)) == 0)
      StatsJsonPath = Argv[I] + std::strlen(Flag);
    else if (std::strncmp(Argv[I], Jobs, std::strlen(Jobs)) == 0)
      JobsFlag = static_cast<uint32_t>(
          std::strtoul(Argv[I] + std::strlen(Jobs), nullptr, 10));
    else if (std::strcmp(Argv[I], "--slice") == 0)
      SliceFlag = true;
    else if (std::strcmp(Argv[I], "--no-slice") == 0)
      NoSliceFlag = true;
    else
      Argv[Kept++] = Argv[I];
  }
  Argc = Kept;

  if (SliceFlag)
    benchmark::RegisterBenchmark("BM_ConeEncodeSliced",
                                 [](benchmark::State &S) {
                                   runConeEncodeBench(S, /*Slice=*/true);
                                 })
        ->Unit(benchmark::kMillisecond);
  if (NoSliceFlag)
    benchmark::RegisterBenchmark("BM_ConeEncodeUnsliced",
                                 [](benchmark::State &S) {
                                   runConeEncodeBench(S, /*Slice=*/false);
                                 })
        ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (SliceFlag || NoSliceFlag)
    return dumpEncodingJson(StatsJsonPath.empty() ? "BENCH_encoding.json"
                                                  : StatsJsonPath);
  return 0;
}
