//===- bench/bench_parallel.cpp - Parallel solving scaling curve --------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Scaling curve for the parallel per-COP solving path: one Maximal run
/// per jobs value (1, 2, 4, 8 by default) on a 40k-event synthetic
/// workload, reported as JSON with per-run wall time, speedup over the
/// sequential run, and the full detection stats. The race counts must be
/// identical across rows — the parallel path is deterministic — so the
/// harness also fails loudly if they diverge.
///
/// Usage: bench_parallel [--events=N] [--out=PATH] [--jobs=1,2,4,8]
///
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"
#include "support/Stats.h"
#include "support/BuildInfo.h"
#include "support/Timer.h"
#include "workloads/Synthetic.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace rvp;

namespace {

Trace makeTrace(uint64_t Events) {
  SyntheticSpec Spec;
  Spec.Name = "bench-parallel";
  Spec.Workers = 8;
  Spec.TargetEvents = Events;
  Spec.PlainRaces = 4;
  Spec.CpOnlyRaces = 2;
  Spec.SaidOnlyRaces = 2;
  Spec.HbNotSaidRaces = 2;
  Spec.RvOnlyRaces = 2;
  Spec.QcOnlyPairs = 4;
  Spec.OrderedPairs = 8;
  Spec.AtomicityPairs = 4;
  Spec.DeadlockCycles = 4;
  Spec.Seed = 5;
  return generateSynthetic(Spec);
}

std::vector<uint32_t> parseJobsList(const char *Text) {
  std::vector<uint32_t> Jobs;
  for (const char *P = Text; *P;) {
    char *End = nullptr;
    unsigned long V = std::strtoul(P, &End, 10);
    if (End == P)
      break;
    Jobs.push_back(static_cast<uint32_t>(V));
    P = *End == ',' ? End + 1 : End;
  }
  return Jobs;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Events = 40000;
  std::string OutPath;
  std::vector<uint32_t> JobsList = {1, 2, 4, 8};
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--events=", 9) == 0)
      Events = std::strtoull(Arg + 9, nullptr, 10);
    else if (std::strncmp(Arg, "--out=", 6) == 0)
      OutPath = Arg + 6;
    else if (std::strncmp(Arg, "--jobs=", 7) == 0)
      JobsList = parseJobsList(Arg + 7);
    else {
      std::fprintf(stderr,
                   "usage: %s [--events=N] [--out=PATH] [--jobs=1,2,4,8]\n",
                   Argv[0]);
      return 1;
    }
  }

  Trace T = makeTrace(Events);
  DetectorOptions Options;
  Options.PerCopBudgetSeconds = 30;
  Options.CollectWitnesses = false;

  std::string Rows;
  double BaselineSeconds = 0;
  size_t BaselineRaces = 0;
  bool First = true;
  for (uint32_t Jobs : JobsList) {
    Options.Jobs = Jobs;
    Timer Clock;
    DetectionResult R = detectRaces(T, Technique::Maximal, Options);
    double Seconds = Clock.seconds();
    if (First) {
      BaselineSeconds = Seconds;
      BaselineRaces = R.raceCount();
    } else if (R.raceCount() != BaselineRaces) {
      std::fprintf(stderr,
                   "error: jobs=%u found %zu races, jobs=%u found %zu — "
                   "parallel path is not deterministic\n",
                   JobsList.front(), BaselineRaces, Jobs, R.raceCount());
      return 1;
    }
    double Speedup = Seconds > 0 ? BaselineSeconds / Seconds : 0;
    std::printf("jobs=%u  races=%zu  %.3fs  speedup=%.2fx\n", Jobs,
                R.raceCount(), Seconds, Speedup);
    JsonObject Row;
    Row.field("jobs", static_cast<uint64_t>(Jobs))
        .field("races", static_cast<uint64_t>(R.raceCount()))
        .field("seconds", Seconds)
        .field("speedup", Speedup)
        .raw("stats", statsToJson(R.Stats, "rv"));
    if (!First)
      Rows += ",";
    Rows += Row.str();
    First = false;
  }

  JsonObject Out;
  appendRunMetadata(Out);
  Out.field("workload", "synthetic-" + std::to_string(Events))
      .field("events", static_cast<uint64_t>(T.size()))
      .field("hardware_concurrency",
             static_cast<uint64_t>(std::thread::hardware_concurrency()))
      .raw("runs", "[" + Rows + "]");
  std::string Json = Out.str() + "\n";
  if (OutPath.empty() || OutPath == "-") {
    std::fputs(Json.c_str(), stdout);
    return 0;
  }
  std::ofstream File(OutPath);
  if (!File) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  File << Json;
  return 0;
}
