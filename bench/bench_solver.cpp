//===- bench/bench_solver.cpp - Solver microbenchmarks -----------------------===//
//
// Part of the rvpredict-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Scaling of the in-tree CDCL(T) order solver against Z3 on the formula
/// families the race encoder produces: long must-happen-before chains,
/// chains with a contradicting back edge (UNSAT), quadratic lock-ordering
/// disjunctions, and random order formulas.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace rvp;

namespace {

NodeRef chainFormula(FormulaBuilder &FB, uint32_t Length, bool Unsat) {
  std::vector<NodeRef> Atoms;
  for (OrderVar I = 0; I < Length; ++I)
    Atoms.push_back(FB.mkAtom(I, I + 1));
  if (Unsat)
    Atoms.push_back(FB.mkAtom(Length, 0));
  return FB.mkAnd(std::move(Atoms));
}

/// N critical-section pairs: the paper's quadratic lock constraints.
NodeRef lockFormula(FormulaBuilder &FB, uint32_t Sections) {
  // Section i occupies order variables [4i, 4i+1] (acquire, release).
  std::vector<NodeRef> Conj;
  for (uint32_t I = 0; I < Sections; ++I) {
    Conj.push_back(FB.mkAtom(4 * I, 4 * I + 1));
    for (uint32_t J = 0; J < I; ++J)
      Conj.push_back(FB.mkOr2(FB.mkAtom(4 * J + 1, 4 * I),
                              FB.mkAtom(4 * I + 1, 4 * J)));
  }
  return FB.mkAnd(std::move(Conj));
}

NodeRef randomFormula(FormulaBuilder &FB, Rng &R, uint32_t NumVars,
                      uint32_t Depth) {
  if (Depth == 0 || R.chance(1, 3)) {
    OrderVar A = static_cast<OrderVar>(R.below(NumVars));
    OrderVar B = static_cast<OrderVar>(R.below(NumVars));
    if (A == B)
      B = (B + 1) % NumVars;
    return FB.mkAtom(A, B);
  }
  std::vector<NodeRef> Kids;
  for (uint32_t I = 0; I < 2 + R.below(3); ++I)
    Kids.push_back(randomFormula(FB, R, NumVars, Depth - 1));
  return R.chance(1, 2) ? FB.mkAnd(std::move(Kids))
                        : FB.mkOr(std::move(Kids));
}

void runSolver(benchmark::State &State, const char *Name,
               NodeRef (*Build)(FormulaBuilder &, uint32_t),
               uint32_t Size) {
  auto Solver = createSolverByName(Name);
  if (!Solver) {
    State.SkipWithError("backend unavailable");
    return;
  }
  FormulaBuilder FB;
  NodeRef Root = Build(FB, Size);
  for (auto _ : State) {
    SatResult R = Solver->solve(FB, Root, Deadline(), nullptr);
    benchmark::DoNotOptimize(R);
  }
}

NodeRef buildChainSat(FormulaBuilder &FB, uint32_t N) {
  return chainFormula(FB, N, false);
}
NodeRef buildChainUnsat(FormulaBuilder &FB, uint32_t N) {
  return chainFormula(FB, N, true);
}
NodeRef buildLocks(FormulaBuilder &FB, uint32_t N) {
  return lockFormula(FB, N);
}

void BM_IdlChainSat(benchmark::State &State) {
  runSolver(State, "idl", buildChainSat,
            static_cast<uint32_t>(State.range(0)));
}
void BM_Z3ChainSat(benchmark::State &State) {
  runSolver(State, "z3", buildChainSat,
            static_cast<uint32_t>(State.range(0)));
}
void BM_IdlChainUnsat(benchmark::State &State) {
  runSolver(State, "idl", buildChainUnsat,
            static_cast<uint32_t>(State.range(0)));
}
void BM_Z3ChainUnsat(benchmark::State &State) {
  runSolver(State, "z3", buildChainUnsat,
            static_cast<uint32_t>(State.range(0)));
}
void BM_IdlLockDisjunctions(benchmark::State &State) {
  runSolver(State, "idl", buildLocks,
            static_cast<uint32_t>(State.range(0)));
}
void BM_Z3LockDisjunctions(benchmark::State &State) {
  runSolver(State, "z3", buildLocks,
            static_cast<uint32_t>(State.range(0)));
}

void BM_IdlRandom(benchmark::State &State) {
  auto Solver = createIdlSolver();
  Rng R(99);
  FormulaBuilder FB;
  NodeRef Root = randomFormula(FB, R, static_cast<uint32_t>(State.range(0)),
                               4);
  for (auto _ : State) {
    SatResult Result = Solver->solve(FB, Root, Deadline(), nullptr);
    benchmark::DoNotOptimize(Result);
  }
}

// ----------------------------------------------- incremental session A/B

/// One COP-style query against a shared window: the quadratic lock core
/// over \p Sections critical sections conjoined with a pair-specific
/// order atom. Even queries ask for an orderable pair (SAT); odd queries
/// ask for the back edge inside a section (UNSAT) — roughly the mix the
/// detectors see after the quick check.
NodeRef windowQuery(FormulaBuilder &FB, uint32_t Sections, uint32_t Q) {
  NodeRef Core = lockFormula(FB, Sections);
  uint32_t I = Q % Sections;
  if (Q % 2 == 0)
    return FB.mkAnd2(Core, FB.mkAtom(4 * I + 1, 4 * ((I + 1) % Sections)));
  return FB.mkAnd2(Core, FB.mkAtom(4 * I + 1, 4 * I));
}

constexpr uint32_t WindowQueries = 64;

/// The legacy per-COP path: every query re-encodes the window core into a
/// fresh builder and constructs a fresh solver.
void runOneShotWindow(benchmark::State &State, const char *Name) {
  if (!createSolverByName(Name)) {
    State.SkipWithError("backend unavailable");
    return;
  }
  uint32_t Sections = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    for (uint32_t Q = 0; Q < WindowQueries; ++Q) {
      FormulaBuilder FB;
      NodeRef Root = windowQuery(FB, Sections, Q);
      auto Solver = createSolverByName(Name);
      SatResult R = Solver->solve(FB, Root, Deadline(), nullptr);
      benchmark::DoNotOptimize(R);
    }
  }
  State.counters["queries"] = WindowQueries;
}

/// The incremental path: one session and one hash-consed builder per
/// window; the core encodes once and learned clauses carry across queries.
void runSessionWindow(benchmark::State &State, const char *Name) {
  if (!createSessionByName(Name)) {
    State.SkipWithError("backend unavailable");
    return;
  }
  uint32_t Sections = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    FormulaBuilder FB;
    auto Session = createSessionByName(Name);
    for (uint32_t Q = 0; Q < WindowQueries; ++Q) {
      NodeRef Root = windowQuery(FB, Sections, Q);
      SatResult R = Session->query(FB, Root, Deadline(), nullptr);
      benchmark::DoNotOptimize(R);
    }
  }
  State.counters["queries"] = WindowQueries;
}

void BM_IdlOneShotWindow(benchmark::State &State) {
  runOneShotWindow(State, "idl");
}
void BM_IdlSessionWindow(benchmark::State &State) {
  runSessionWindow(State, "idl");
}
void BM_Z3OneShotWindow(benchmark::State &State) {
  runOneShotWindow(State, "z3");
}
void BM_Z3SessionWindow(benchmark::State &State) {
  runSessionWindow(State, "z3");
}

} // namespace

BENCHMARK(BM_IdlChainSat)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Z3ChainSat)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_IdlChainUnsat)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Z3ChainUnsat)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_IdlLockDisjunctions)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_Z3LockDisjunctions)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_IdlRandom)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_IdlOneShotWindow)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_IdlSessionWindow)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Z3OneShotWindow)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Z3SessionWindow)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
